//! # Durable storage: an on-disk database directory
//!
//! This module persists a [`crate::Database`] as an immutable-segment
//! store with crash recovery, mirroring the in-memory design: sealed
//! [`crate::ColumnSegment`]s are written once and never rewritten, a
//! manifest atomically publishes catalog versions, and a write-ahead
//! log makes `append_rows` durable *before* the new version is
//! published in memory.
//!
//! ```text
//! <dir>/
//! ├── MANIFEST            root: catalog version, per-table chunk lists,
//! │                       lineage, schemas (atomic tmp+rename publish)
//! ├── wal.log             appends/drops since the manifest (registra-
//! │                       tions checkpoint directly instead)
//! ├── warm.plans          optional: cached plan fingerprints spilled by
//! │                       the serving layer for warm restarts
//! └── segments/
//!     ├── seg-00000001.seg   immutable chunk: typed column values +
//!     ├── seg-00000002.seg   validity + dictionary delta, every
//!     └── ...                section length-prefixed + CRC32-checksummed
//! ```
//!
//! **Invariants.**
//!
//! * Segment files are immutable once referenced by a manifest; a
//!   checkpoint only *adds* files (append deltas) or switches a table
//!   to a fresh file set (replacement), then GCs unreferenced files.
//! * The WAL is the durability point: an acknowledged `append_rows`
//!   has been written (and, by default, fsynced) before the new table
//!   version is visible to any reader.
//! * Recovery = read `MANIFEST`, load its chunks, replay the WAL tail
//!   with record versions above the manifest's catalog version. Row
//!   ids, dictionary codes, versions, and lineage reproduce exactly,
//!   so cached-state refresh contracts survive a restart bit-for-bit.
//! * A torn WAL tail (crash mid-write) is truncated: only the never-
//!   acknowledged record is lost. A torn `MANIFEST.tmp` is ignored.
//!   Any checksum failure inside referenced data surfaces as
//!   [`DbError::Corrupt`] — never a panic, never a wrong answer.

pub mod format;
pub mod manifest;
pub mod segment_file;
pub mod wal;

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::column::{Column, StrDict};
use crate::error::{DbError, DbResult};
use crate::metrics::StoreMetrics;
use crate::plan::PhysicalPlan;
use crate::segment::ColumnSegment;
use crate::table::Table;
use crate::value::DataType;

use format::{corrupt, io_err, sync_dir, Dec, Enc};
use manifest::{ChunkRef, Manifest, TableEntry};
use segment_file::{read_chunk, write_chunk};
pub use wal::WalRecord;

/// Subdirectory holding segment files.
const SEGMENTS_DIR: &str = "segments";
/// File name of the serving layer's warm-plan spill.
pub const WARM_PLANS_FILE: &str = "warm.plans";

/// Durability knobs of a database directory, set when the catalog is
/// saved or opened ([`crate::Database::save_with`],
/// [`crate::Database::open_with`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Checkpoint (seal WAL contents into segment files + a new
    /// manifest) once the WAL reaches this many bytes. Smaller values
    /// bound replay time; larger values amortize manifest writes.
    pub wal_checkpoint_bytes: u64,
    /// Fsync every WAL append before acknowledging it. `true` is the
    /// durability guarantee; `false` trades the last few batches on an
    /// OS crash for append throughput (process crashes lose nothing
    /// either way).
    pub sync_writes: bool,
}

impl DurabilityConfig {
    /// Defaults: 1 MiB checkpoint threshold, fsynced appends.
    pub fn recommended() -> Self {
        DurabilityConfig {
            wal_checkpoint_bytes: 1 << 20,
            sync_writes: true,
        }
    }

    /// Builder: set the WAL checkpoint threshold.
    pub fn with_wal_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.wal_checkpoint_bytes = bytes;
        self
    }

    /// Builder: toggle per-append fsync.
    pub fn with_sync_writes(mut self, sync: bool) -> Self {
        self.sync_writes = sync;
        self
    }
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig::recommended()
    }
}

/// Point-in-time description of a catalog's durable state (what the
/// demo CLI prints after `:save` / `:open` / `:append`).
#[derive(Debug, Clone)]
pub struct DurabilitySummary {
    /// The database directory.
    pub dir: PathBuf,
    /// Per-table `(name, version, rows, segment files)` as of the last
    /// manifest.
    pub tables: Vec<(String, u64, u64, usize)>,
    /// Total segment files referenced by the manifest.
    pub segment_files: usize,
    /// WAL bytes pending the next checkpoint.
    pub wal_bytes: u64,
    /// WAL records pending the next checkpoint.
    pub wal_records: u64,
    /// Set when the directory can no longer safely accept appends — a
    /// registration failed to checkpoint, a WAL truncation failed
    /// mid-checkpoint, or a failed WAL append left an unrepaired tail.
    /// (A drop whose log write fails is simply not applied — it errors
    /// without wedging.) A successful checkpoint or re-save heals any
    /// of these; the unrepaired-tail variant also self-heals on the
    /// next append, which retries the tail repair first.
    pub wedged: Option<String>,
    /// The most recent checkpoint failure, if any (checkpoints retry on
    /// the next threshold crossing; the WAL keeps everything durable in
    /// the meantime).
    pub last_checkpoint_error: Option<String>,
}

/// Live durability state attached to a [`crate::Database`]. All access
/// is serialized by the catalog's mutation lock plus the state's own
/// mutex slot.
#[derive(Debug)]
pub struct DurabilityState {
    dir: PathBuf,
    config: DurabilityConfig,
    wal: wal::Wal,
    /// Mirror of the last published manifest.
    manifest: Manifest,
    wedged: Option<String>,
    last_checkpoint_error: Option<String>,
    /// Registry-backed `store.*` handles (fsync latency is measured on
    /// the bundle's injected clock, never the wall clock).
    metrics: StoreMetrics,
}

impl DurabilityState {
    /// Append one record to the WAL (the durability point of the
    /// mutation it describes).
    ///
    /// # Errors
    /// `Io` when the log cannot be written, or when the store is wedged
    /// by an earlier failure (see [`DurabilitySummary::wedged`]).
    pub(crate) fn log(&mut self, record: &WalRecord) -> DbResult<()> {
        self.log_payload(&record.encode())
    }

    /// [`DurabilityState::log`] of an already-encoded record payload
    /// ([`WalRecord::encode_append`] — lets the ingest path log a batch
    /// it only borrows).
    pub(crate) fn log_payload(&mut self, payload: &[u8]) -> DbResult<()> {
        self.check_not_wedged()?;
        // A broken tail present now means a previous append's write
        // failed mid-frame; a successful append below repairs it first
        // (truncate back to the last valid frame), which is worth
        // counting — it is the recovery path taken without a restart.
        let repairing = self.wal.broken_reason().is_some();
        let bytes_before = self.wal.bytes();
        let start_ns = self.metrics.clock.now_ns();
        let result = self.wal.append_payload(payload, self.config.sync_writes);
        if result.is_ok() {
            self.metrics.wal_appends.inc();
            self.metrics
                .wal_bytes
                .add(self.wal.bytes().saturating_sub(bytes_before));
            if self.config.sync_writes {
                self.metrics.wal_fsyncs.inc();
                self.metrics
                    .wal_fsync_ns
                    .record(self.metrics.clock.now_ns().saturating_sub(start_ns));
            }
            if repairing {
                self.metrics.torn_tail_repairs.inc();
            }
        }
        self.metrics.wal_bytes_pending.set(self.wal.bytes());
        result
    }

    /// Error if the store is wedged (see [`DurabilitySummary::wedged`])
    /// — lets the ingest path refuse a doomed batch before building it.
    pub(crate) fn check_not_wedged(&self) -> DbResult<()> {
        match &self.wedged {
            Some(w) => Err(DbError::Io(format!(
                "durable store {} is wedged ({w}); checkpoint or re-save to recover",
                self.dir.display()
            ))),
            None => Ok(()),
        }
    }

    /// Record that a catalog mutation already applied in memory could
    /// not be made durable: the directory no longer tracks the
    /// in-memory catalog, so further appends are refused loudly instead
    /// of diverging silently.
    pub(crate) fn wedge(&mut self, err: &DbError) {
        self.wedged.get_or_insert_with(|| err.to_string());
    }

    /// Has the WAL grown past the checkpoint threshold?
    pub(crate) fn should_checkpoint(&self) -> bool {
        self.wal.bytes() >= self.config.wal_checkpoint_bytes
    }

    /// Checkpoint: seal everything the WAL holds into segment files,
    /// publish a new manifest, truncate the WAL, and GC unreferenced
    /// segment files. `tables` is the full catalog snapshot (sorted by
    /// name) and `catalog_version` the counter value it reflects.
    pub(crate) fn checkpoint(
        &mut self,
        catalog_version: u64,
        tables: &[Arc<Table>],
    ) -> DbResult<()> {
        let seg_dir = self.dir.join(SEGMENTS_DIR);
        let wal_bytes_sealed = self.wal.bytes();
        let mut next_id = self.manifest.next_file_id;
        let mut entries = Vec::with_capacity(tables.len());
        for table in tables {
            entries.push(self.table_entry(table, &seg_dir, &mut next_id)?);
        }
        let new = Manifest {
            catalog_version,
            next_file_id: next_id,
            wal_epoch: self.manifest.wal_epoch,
            tables: entries,
        };
        // Make the chunk files' directory entries durable *before* the
        // manifest references them — otherwise a power loss could
        // leave a published manifest pointing at files whose dirents
        // never reached disk.
        sync_dir(&seg_dir);
        new.write(&self.dir)?;
        self.metrics.manifest_publishes.inc();
        // From here the new manifest is authoritative — mirror it
        // *immediately*, before anything below can fail: a stale mirror
        // would hand the next checkpoint file ids the published
        // manifest already references, clobbering live segment files.
        // The full catalog snapshot is now on disk, so a wedge (an
        // earlier failed registration checkpoint, WAL truncation, or
        // unrepaired append tail) is healed too — see
        // [`DurabilitySummary::wedged`] for the full list.
        // Then drop segment files nothing references any more
        // (replaced tables, crashed earlier checkpoints) and reset the
        // WAL the manifest subsumes.
        self.manifest = new;
        self.wedged = None;
        gc_segments(&seg_dir, &self.manifest);
        if let Err(e) = self.wal.truncate() {
            // Nothing durable is lost (every WAL record is at or below
            // the manifest's catalog version now, so replay skips them
            // all), but the log file's state is unknown — refuse
            // appends until a retried checkpoint recreates it.
            self.wedge(&e);
            return Err(e);
        }
        // Every checkpoint caller (threshold, explicit, registration)
        // supersedes any earlier recorded failure on success.
        self.last_checkpoint_error = None;
        self.metrics.checkpoints.inc();
        self.metrics.checkpoint_bytes.add(wal_bytes_sealed);
        self.metrics.wal_bytes_pending.set(self.wal.bytes());
        Ok(())
    }

    /// Checkpoint if the threshold is reached, remembering (not
    /// propagating) failures: the WAL still holds everything durably,
    /// so a failed checkpoint only defers sealing.
    pub(crate) fn maybe_checkpoint(&mut self, catalog_version: u64, tables: &[Arc<Table>]) {
        if !self.should_checkpoint() {
            return;
        }
        if let Err(e) = self.checkpoint(catalog_version, tables) {
            self.last_checkpoint_error = Some(e.to_string());
        }
    }

    /// The manifest entry for `table` in the checkpoint being built:
    /// unchanged tables keep their chunk list, pure appends gain one
    /// delta chunk, everything else is rewritten from its in-memory
    /// segments.
    fn table_entry(
        &self,
        table: &Table,
        seg_dir: &Path,
        next_id: &mut u64,
    ) -> DbResult<TableEntry> {
        let old = self.manifest.table(table.name());
        if let Some(e) = old {
            if e.version == table.version() {
                return Ok(e.clone());
            }
            let same_schema = e.schema == table.schema().columns();
            let append = table
                .append_delta_since(e.version)
                .filter(|&(lo, _)| lo as u64 == e.rows);
            if let (true, Some((lo, hi))) = (same_schema, append) {
                let mut chunks = e.chunks.clone();
                if hi > lo {
                    let dict_starts = e.final_dict_ends();
                    let (bytes, dict_ends) = write_chunk(table, lo, hi, &dict_starts)?;
                    let file = alloc_segment_file(seg_dir, next_id, &bytes)?;
                    chunks.push(ChunkRef {
                        file,
                        start_row: lo as u64,
                        rows: (hi - lo) as u64,
                        dict_ends,
                    });
                }
                return Ok(TableEntry {
                    name: table.name().to_string(),
                    version: table.version(),
                    rows: table.num_rows() as u64,
                    lineage: lineage_to_disk(table.lineage()),
                    schema: table.schema().columns().to_vec(),
                    chunks,
                });
            }
        }
        full_table_entry(table, seg_dir, next_id)
    }

    /// Snapshot for the CLI / diagnostics.
    pub(crate) fn summary(&self) -> DurabilitySummary {
        DurabilitySummary {
            dir: self.dir.clone(),
            tables: self
                .manifest
                .tables
                .iter()
                .map(|t| (t.name.clone(), t.version, t.rows, t.chunks.len()))
                .collect(),
            segment_files: self.manifest.tables.iter().map(|t| t.chunks.len()).sum(),
            wal_bytes: self.wal.bytes(),
            wal_records: self.wal.records(),
            wedged: self
                .wedged
                .clone()
                .or_else(|| self.wal.broken_reason().map(str::to_string)),
            last_checkpoint_error: self.last_checkpoint_error.clone(),
        }
    }
}

fn lineage_to_disk(lineage: &[(u64, usize)]) -> Vec<(u64, u64)> {
    lineage.iter().map(|&(v, r)| (v, r as u64)).collect()
}

/// Write one segment file under the next allocated id, fsynced. The
/// file only becomes meaningful once a manifest references it — a crash
/// in between leaves garbage that the next checkpoint GCs.
fn alloc_segment_file(seg_dir: &Path, next_id: &mut u64, bytes: &[u8]) -> DbResult<String> {
    *next_id += 1;
    let name = format!("seg-{:08}.seg", *next_id);
    let path = seg_dir.join(&name);
    let mut f = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
    f.write_all(bytes).map_err(|e| io_err(&path, e))?;
    f.sync_all().map_err(|e| io_err(&path, e))?;
    Ok(name)
}

/// A fresh full set of chunk files for `table`, one per in-memory
/// sealed segment (so `open(save(db))` reproduces segment boundaries).
fn full_table_entry(table: &Table, seg_dir: &Path, next_id: &mut u64) -> DbResult<TableEntry> {
    let ncols = table.schema().len();
    // Segment boundaries from the first column (identical across
    // columns); a column-less or empty table gets a single covering
    // chunk when it has rows, none otherwise.
    let boundaries: Vec<(usize, usize)> = if ncols > 0 && table.num_rows() > 0 {
        table
            .column_at(0)
            .segments()
            .map(|(start, seg)| (start, start + seg.len()))
            .collect()
    } else if table.num_rows() > 0 {
        vec![(0, table.num_rows())]
    } else {
        Vec::new()
    };
    let mut chunks = Vec::with_capacity(boundaries.len());
    let mut dict_starts = vec![0u64; ncols];
    for (lo, hi) in boundaries {
        let (bytes, dict_ends) = write_chunk(table, lo, hi, &dict_starts)?;
        let file = alloc_segment_file(seg_dir, next_id, &bytes)?;
        chunks.push(ChunkRef {
            file,
            start_row: lo as u64,
            rows: (hi - lo) as u64,
            dict_ends: dict_ends.clone(),
        });
        dict_starts = dict_ends;
    }
    Ok(TableEntry {
        name: table.name().to_string(),
        version: table.version(),
        rows: table.num_rows() as u64,
        lineage: lineage_to_disk(table.lineage()),
        schema: table.schema().columns().to_vec(),
        chunks,
    })
}

/// Delete `seg-*.seg` files the manifest no longer references.
fn gc_segments(seg_dir: &Path, manifest: &Manifest) {
    let referenced: std::collections::HashSet<&str> = manifest
        .tables
        .iter()
        .flat_map(|t| t.chunks.iter().map(|c| c.file.as_str()))
        .collect();
    let Ok(entries) = std::fs::read_dir(seg_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("seg-") && name.ends_with(".seg") && !referenced.contains(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Largest id among `seg-<id>.seg` files present in `seg_dir` (0 when
/// none). A re-save seeds its file-id counter past this even when the
/// old manifest is unreadable, so files a previous incarnation still
/// references are never overwritten.
fn max_segment_file_id(seg_dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(seg_dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            name.strip_prefix("seg-")?
                .strip_suffix(".seg")?
                .parse()
                .ok()
        })
        .max()
        .unwrap_or(0)
}

/// Create (or overwrite) a database directory from a full catalog
/// snapshot: write every table's chunks under fresh file ids, publish
/// the manifest, then reset the WAL. Returns the attached state.
///
/// Safe against crashes *and* against re-saving into a live directory:
/// fresh chunk files never reuse an id the current on-disk manifest may
/// reference, the old manifest and WAL stay untouched until the new
/// manifest's atomic publish (a crash before it leaves the previous
/// state fully intact, acknowledged WAL tail included), and the new
/// manifest carries a strictly newer `wal_epoch` — so a crash *after*
/// the publish but before the WAL reset cannot replay the previous
/// incarnation's records onto the new catalog.
pub(crate) fn create(
    dir: &Path,
    config: DurabilityConfig,
    catalog_version: u64,
    tables: &[Arc<Table>],
    metrics: StoreMetrics,
) -> DbResult<DurabilityState> {
    let seg_dir = dir.join(SEGMENTS_DIR);
    std::fs::create_dir_all(&seg_dir).map_err(|e| io_err(&seg_dir, e))?;
    let wal_path = dir.join(wal::Wal::FILE_NAME);
    let old = Manifest::read(dir).ok();
    let epoch = old
        .as_ref()
        .map(|m| m.wal_epoch)
        .into_iter()
        .chain(wal::peek_epoch(&wal_path))
        .max()
        .map_or(1, |e| e + 1);
    let mut next_id = old
        .as_ref()
        .map_or(0, |m| m.next_file_id)
        .max(max_segment_file_id(&seg_dir));

    let mut entries = Vec::with_capacity(tables.len());
    for table in tables {
        entries.push(full_table_entry(table, &seg_dir, &mut next_id)?);
    }
    let manifest = Manifest {
        catalog_version,
        next_file_id: next_id,
        wal_epoch: epoch,
        tables: entries,
    };
    // Chunk dirents must be durable before the manifest references
    // them (see the same step in checkpoint).
    sync_dir(&seg_dir);
    manifest.write(dir)?;
    metrics.manifest_publishes.inc();
    // The new manifest is now authoritative: previous chunks can go,
    // and the previous incarnation's WAL is unreadable under the new
    // epoch whether or not the reset below completes.
    gc_segments(&seg_dir, &manifest);
    let wal = wal::Wal::reset(&wal_path, epoch)?;
    metrics.wal_bytes_pending.set(wal.bytes());
    Ok(DurabilityState {
        dir: dir.to_path_buf(),
        config,
        wal,
        manifest,
        wedged: None,
        last_checkpoint_error: None,
        metrics,
    })
}

/// Load a database directory: manifest chunks, then the WAL tail.
/// Returns the attached state, the recovered tables, and the recovered
/// catalog version counter.
pub(crate) fn load(
    dir: &Path,
    config: DurabilityConfig,
    metrics: StoreMetrics,
) -> DbResult<(DurabilityState, Vec<Arc<Table>>, u64)> {
    let manifest = Manifest::read(dir)?;
    let mut tables: HashMap<String, Arc<Table>> = HashMap::new();
    for entry in &manifest.tables {
        tables.insert(entry.name.clone(), Arc::new(load_table(dir, entry)?));
    }

    // Replay the WAL tail: records above the manifest's catalog version
    // re-apply exactly the mutations the crash interrupted sealing.
    // Records at or below it were already folded into the manifest (a
    // crash between manifest publish and WAL truncation) and are
    // skipped idempotently; a log whose epoch does not match the
    // manifest belongs to a replaced incarnation and is reset instead.
    let wal_path = dir.join(wal::Wal::FILE_NAME);
    let replayed = wal::replay(&wal_path, manifest.wal_epoch)?;
    if replayed.torn_bytes > 0 {
        // Recovery truncated a torn tail (crash mid-write of a record
        // that was never acknowledged).
        metrics.torn_tail_repairs.inc();
    }
    let mut catalog_version = manifest.catalog_version;
    for record in &replayed.records {
        if record.version() <= manifest.catalog_version {
            continue;
        }
        apply_record(&mut tables, record)?;
        metrics.recovery_replayed.inc();
        catalog_version = catalog_version.max(record.version());
    }
    let wal = if replayed.stale {
        wal::Wal::reset(&wal_path, manifest.wal_epoch)?
    } else {
        wal::Wal::resume(
            &wal_path,
            manifest.wal_epoch,
            replayed.valid_bytes,
            replayed.records.len() as u64,
        )?
    };
    metrics.wal_bytes_pending.set(wal.bytes());

    let mut tables: Vec<Arc<Table>> = tables.into_values().collect();
    tables.sort_by(|a, b| a.name().cmp(b.name()));
    let state = DurabilityState {
        dir: dir.to_path_buf(),
        config,
        wal,
        manifest,
        wedged: None,
        last_checkpoint_error: None,
        metrics,
    };
    Ok((state, tables, catalog_version))
}

/// Re-apply one WAL record to the recovering catalog. Rows pass through
/// the exact same `push_row` path the original mutation used, so row
/// ids, dictionary codes, segment sealing, and compaction points
/// reproduce deterministically.
fn apply_record(tables: &mut HashMap<String, Arc<Table>>, record: &WalRecord) -> DbResult<()> {
    match record {
        WalRecord::Register {
            version,
            table,
            schema,
            rows,
        } => {
            let schema = wal::schema_from_defs(schema.clone())?;
            let mut t = Table::with_capacity(table, schema, rows.len());
            for row in rows {
                t.push_row(row.clone())
                    .map_err(|e| corrupt(format!("WAL register of {table}: bad row: {e}")))?;
            }
            t.stamp_registered(*version);
            tables.insert(table.clone(), Arc::new(t));
        }
        WalRecord::Append {
            version,
            table,
            rows,
        } => {
            let old = tables.get(table).ok_or_else(|| {
                corrupt(format!(
                    "WAL appends to {table}, which the manifest does not know"
                ))
            })?;
            let mut next = (**old).clone();
            for row in rows {
                next.push_row(row.clone())
                    .map_err(|e| corrupt(format!("WAL append to {table}: bad row: {e}")))?;
            }
            if next.num_segments() >= Table::SEGMENT_COMPACT_THRESHOLD {
                next = next
                    .compacted()
                    .map_err(|e| corrupt(format!("WAL append to {table}: compaction: {e}")))?;
            }
            next.stamp_appended(*version);
            tables.insert(table.clone(), Arc::new(next));
        }
        WalRecord::Drop { table, .. } => {
            if tables.remove(table).is_none() {
                return Err(corrupt(format!(
                    "WAL drops {table}, which the manifest does not know"
                )));
            }
        }
    }
    Ok(())
}

/// Load one table from its manifest entry's chunk files.
fn load_table(dir: &Path, entry: &TableEntry) -> DbResult<Table> {
    let schema = entry.schema()?;
    let ncols = schema.len();
    let mut seg_lists: Vec<Vec<Arc<ColumnSegment>>> = vec![Vec::new(); ncols];
    let mut dicts: Vec<Option<StrDict>> = schema
        .columns()
        .iter()
        .map(|c| (c.dtype == DataType::Str).then(StrDict::default))
        .collect();

    for chunk_ref in &entry.chunks {
        let path = dir.join(SEGMENTS_DIR).join(&chunk_ref.file);
        let what = format!("segment {}", path.display());
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let chunk = read_chunk(&bytes, &what)?;
        if chunk.table != entry.name
            || chunk.start_row != chunk_ref.start_row
            || chunk.rows != chunk_ref.rows
        {
            return Err(corrupt(format!(
                "{what}: header ({}, rows {}..{}) does not match manifest ({}, rows {}..{})",
                chunk.table,
                chunk.start_row,
                chunk.start_row + chunk.rows,
                entry.name,
                chunk_ref.start_row,
                chunk_ref.start_row + chunk_ref.rows,
            )));
        }
        if chunk.columns.len() != ncols {
            return Err(corrupt(format!(
                "{what}: {} columns, schema has {ncols}",
                chunk.columns.len()
            )));
        }
        for (c, cc) in chunk.columns.into_iter().enumerate() {
            let seg = ColumnSegment::from_parts(cc.data, cc.validity);
            let expected = schema.column_at(c).dtype;
            if seg.data_type() != expected {
                return Err(corrupt(format!(
                    "{what}: column {c} is {}, schema says {expected}",
                    seg.data_type()
                )));
            }
            if let Some(dict) = dicts.get_mut(c).and_then(Option::as_mut) {
                if cc.dict_start != dict.len() as u64 {
                    return Err(corrupt(format!(
                        "{what}: column {c} dictionary starts at {} but {} entries are loaded",
                        cc.dict_start,
                        dict.len()
                    )));
                }
                for s in cc.dict_entries {
                    if dict.push_entry(s).is_none() {
                        return Err(corrupt(format!(
                            "{what}: column {c} re-interns a dictionary entry"
                        )));
                    }
                }
            }
            match seg_lists.get_mut(c) {
                Some(list) => list.push(Arc::new(seg)),
                None => {
                    return Err(corrupt(format!(
                        "{what}: column {c} out of range for {ncols}-column schema"
                    )))
                }
            }
        }
    }

    let columns: Vec<Column> = schema
        .columns()
        .iter()
        .zip(seg_lists)
        .zip(dicts)
        .map(|((def, segs), dict)| Column::from_parts(def.dtype, segs, dict.map(Arc::new)))
        .collect();
    for (def, col) in schema.columns().iter().zip(&columns) {
        if col.len() as u64 != entry.rows {
            return Err(corrupt(format!(
                "table {}: column {} holds {} rows, manifest says {}",
                entry.name,
                def.name,
                col.len(),
                entry.rows
            )));
        }
    }
    let lineage = entry
        .lineage
        .iter()
        .map(|&(v, r)| (v, r as usize))
        .collect();
    Ok(Table::from_parts(
        entry.name.clone(),
        schema,
        columns,
        entry.rows as usize,
        entry.version,
        lineage,
    ))
}

/// Spill a set of physical plans (the serving layer's cached plans) to
/// `path` as one checksummed section, atomically. Plans are sorted by
/// fingerprint so the file is deterministic.
pub fn write_plans(path: &Path, plans: &[PhysicalPlan]) -> DbResult<()> {
    let mut sorted: Vec<&PhysicalPlan> = plans.iter().collect();
    sorted.sort_by_key(|p| p.fingerprint());
    sorted.dedup_by_key(|p| p.fingerprint());
    let mut e = Enc::new();
    e.u64(sorted.len() as u64);
    for plan in sorted {
        encode_plan(&mut e, plan);
    }
    format::write_section_file(path, &e.into_bytes())
}

/// Read a warm-plan spill back. A missing file is an empty set (warm
/// starts are best-effort).
pub fn read_plans(path: &Path) -> DbResult<Vec<PhysicalPlan>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let what = format!("warm plans {}", path.display());
    let payload = format::read_section_file(path, &what)?;
    let mut d = Dec::new(&payload, &what);
    let n = d.count(1)?;
    let mut plans = Vec::with_capacity(n);
    for _ in 0..n {
        plans.push(decode_plan(&mut d, &what)?);
    }
    if !d.is_done() {
        return Err(corrupt(format!("{what}: trailing bytes")));
    }
    Ok(plans)
}

fn encode_plan(e: &mut Enc, plan: &PhysicalPlan) {
    let enc_common =
        |e: &mut Enc, table: &str, filter, sample, aggs: &[crate::exec::AggSpec], row_range| {
            e.str(table);
            e.opt_expr(filter);
            e.opt_sample(sample);
            e.u64(aggs.len() as u64);
            for a in aggs {
                e.agg_spec(a);
            }
            match row_range {
                None => e.u8(0),
                Some((lo, hi)) => {
                    e.u8(1);
                    e.u64(lo as u64);
                    e.u64(hi as u64);
                }
            }
        };
    match plan {
        PhysicalPlan::Aggregate { query, row_range } => {
            e.u8(0);
            enc_common(
                e,
                &query.table,
                &query.filter,
                &query.sample,
                &query.aggregates,
                *row_range,
            );
            e.u64(query.group_by.len() as u64);
            for g in &query.group_by {
                e.str(g);
            }
        }
        PhysicalPlan::GroupingSets { query, row_range } => {
            e.u8(1);
            enc_common(
                e,
                &query.table,
                &query.filter,
                &query.sample,
                &query.aggregates,
                *row_range,
            );
            e.u64(query.sets.len() as u64);
            for set in &query.sets {
                e.u64(set.len() as u64);
                for g in set {
                    e.str(g);
                }
            }
        }
    }
}

fn decode_plan(d: &mut Dec, what: &str) -> DbResult<PhysicalPlan> {
    let tag = d.u8()?;
    let table = d.str()?;
    let filter = d.opt_expr()?;
    let sample = d.opt_sample()?;
    let naggs = d.count(1)?;
    let mut aggregates = Vec::with_capacity(naggs);
    for _ in 0..naggs {
        aggregates.push(d.agg_spec()?);
    }
    let row_range = match d.u8()? {
        0 => None,
        1 => Some((d.u64()? as usize, d.u64()? as usize)),
        t => return Err(corrupt(format!("{what}: bad row-range tag {t}"))),
    };
    let str_list = |d: &mut Dec| -> DbResult<Vec<String>> {
        let n = d.count(1)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(d.str()?);
        }
        Ok(v)
    };
    Ok(match tag {
        0 => PhysicalPlan::Aggregate {
            query: crate::exec::Query {
                table,
                filter,
                group_by: str_list(d)?,
                aggregates,
                sample,
            },
            row_range,
        },
        1 => {
            let nsets = d.count(1)?;
            let mut sets = Vec::with_capacity(nsets);
            for _ in 0..nsets {
                sets.push(str_list(d)?);
            }
            PhysicalPlan::GroupingSets {
                query: crate::exec::SetsQuery {
                    table,
                    filter,
                    sets,
                    aggregates,
                    sample,
                },
                row_range,
            }
        }
        t => return Err(corrupt(format!("{what}: bad plan tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::exec::{AggFunc, AggSpec};
    use crate::expr::Expr;
    use crate::plan::LogicalPlan;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("memdb-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn warm_plans_roundtrip_and_missing_file_is_empty() {
        let dir = tmp("plans");
        let path = dir.join(WARM_PLANS_FILE);
        assert!(read_plans(&path).unwrap().is_empty());

        let a = LogicalPlan::scan("t")
            .filter(Expr::col("d").eq("x"))
            .aggregate(
                vec!["d".into()],
                vec![
                    AggSpec::new(AggFunc::Sum, "m")
                        .with_filter(Expr::col("d").ne("y"))
                        .with_alias("target"),
                    AggSpec::count_star(),
                ],
            )
            .lower()
            .unwrap();
        let b = LogicalPlan::scan("t")
            .grouping_sets(
                vec![vec!["d".into()], vec![], vec!["d".into(), "e".into()]],
                vec![AggSpec::new(AggFunc::Avg, "m")],
            )
            .sliced(3, 9)
            .lower()
            .unwrap();
        write_plans(&path, &[a.clone(), b.clone(), a.clone()]).unwrap();
        let got = read_plans(&path).unwrap();
        assert_eq!(got.len(), 2, "duplicates collapse");
        let fps: Vec<String> = got.iter().map(|p| p.fingerprint()).collect();
        assert!(fps.contains(&a.fingerprint()));
        assert!(fps.contains(&b.fingerprint()));

        // Corruption is typed.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_plans(&path), Err(DbError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn seeded_db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", crate::value::DataType::Str),
            ColumnDef::measure("m", crate::value::DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..20 {
            t.push_row(vec![
                Value::from(format!("g{}", i % 3)),
                Value::Float(i as f64 * 1.25),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    fn rows_of(t: &Table) -> Vec<Vec<Value>> {
        (0..t.num_rows()).map(|i| t.row(i)).collect()
    }

    #[test]
    fn save_open_roundtrip_preserves_everything() {
        let dir = tmp("roundtrip");
        let db = seeded_db();
        db.append_rows("t", vec![vec!["g9".into(), 99.5.into()]])
            .unwrap();
        db.save(&dir).unwrap();
        assert!(db.is_durable());
        let original = db.table("t").unwrap();

        let reopened = Database::open(&dir).unwrap();
        let loaded = reopened.table("t").unwrap();
        assert_eq!(rows_of(&original), rows_of(&loaded));
        assert_eq!(original.version(), loaded.version());
        assert_eq!(original.lineage(), loaded.lineage());
        assert_eq!(original.num_segments(), loaded.num_segments());
        assert_eq!(reopened.version(), db.version());
        // Dictionary codes reproduce bit-for-bit.
        let (a, b) = (original.column("d").unwrap(), loaded.column("d").unwrap());
        for i in 0..a.len() {
            assert_eq!(a.code_at(i), b.code_at(i));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_tail_replays_after_simulated_crash() {
        let dir = tmp("crash");
        let db = seeded_db();
        db.save(&dir).unwrap();
        // Appends land in the WAL; no checkpoint happens below the
        // threshold — the manifest still describes the pre-append state.
        db.append_rows("t", vec![vec!["h0".into(), 1.0.into()]])
            .unwrap();
        db.append_rows("t", vec![vec!["h1".into(), 2.0.into()]])
            .unwrap();
        let live = db.table("t").unwrap();
        let summary = db.durability_summary().unwrap();
        assert_eq!(summary.wal_records, 2);
        assert!(summary.wal_bytes > 0);
        drop(db); // simulated crash: nothing flushed beyond the WAL

        let recovered = Database::open(&dir).unwrap();
        let t = recovered.table("t").unwrap();
        assert_eq!(rows_of(&live), rows_of(&t), "no acknowledged batch lost");
        assert_eq!(t.version(), live.version());
        assert_eq!(t.lineage(), live.lineage());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_seals_wal_into_segments_and_gcs() {
        let dir = tmp("checkpoint");
        let db = seeded_db();
        // Tiny threshold: every append checkpoints immediately.
        db.save_with(
            &dir,
            DurabilityConfig::recommended().with_wal_checkpoint_bytes(1),
        )
        .unwrap();
        db.append_rows("t", vec![vec!["h0".into(), 1.0.into()]])
            .unwrap();
        let summary = db.durability_summary().unwrap();
        assert_eq!(summary.wal_records, 0, "checkpoint truncated the WAL");
        assert_eq!(summary.tables[0].3, 2, "base chunk + delta chunk");
        let live = db.table("t").unwrap();

        // Replacement rewrites the table's chunks; GC drops the old
        // files. (register checkpoints directly — no WAL record.)
        let schema =
            Schema::new(vec![ColumnDef::measure("x", crate::value::DataType::Int64)]).unwrap();
        let mut t2 = Table::new("t", schema);
        t2.push_row(vec![Value::Int(7)]).unwrap();
        db.register(t2);
        let summary = db.durability_summary().unwrap();
        assert_eq!(summary.tables[0].3, 1, "replacement has one fresh chunk");
        let seg_dir = dir.join(SEGMENTS_DIR);
        let on_disk = std::fs::read_dir(&seg_dir).unwrap().count();
        assert_eq!(on_disk, 1, "old chunks GC'd");
        drop(live);

        let reopened = Database::open(&dir).unwrap();
        assert_eq!(reopened.table("t").unwrap().row(0), vec![Value::Int(7)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_table_survives_restart() {
        let dir = tmp("drop");
        let db = seeded_db();
        db.save(&dir).unwrap();
        db.drop_table("t").unwrap();
        drop(db);
        let reopened = Database::open(&dir).unwrap();
        assert!(matches!(reopened.table("t"), Err(DbError::UnknownTable(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A registration on a durable catalog never materializes into a
    /// WAL record (its contents are unbounded) — it checkpoints
    /// directly, sealing any pending WAL backlog along the way.
    #[test]
    fn register_checkpoints_directly_instead_of_wal_logging() {
        let dir = tmp("reg-ckpt");
        let db = seeded_db();
        db.save(&dir).unwrap(); // default (large) checkpoint threshold
        db.append_rows("t", vec![vec!["h0".into(), 1.0.into()]])
            .unwrap();
        assert_eq!(db.durability_summary().unwrap().wal_records, 1);

        let schema =
            Schema::new(vec![ColumnDef::measure("x", crate::value::DataType::Int64)]).unwrap();
        let mut t2 = Table::new("u", schema);
        t2.push_row(vec![Value::Int(7)]).unwrap();
        db.register(t2);
        let summary = db.durability_summary().unwrap();
        assert_eq!(summary.wal_records, 0, "backlog sealed, nothing logged");
        assert_eq!(summary.tables.len(), 2);
        assert!(summary.wedged.is_none());
        let live = db.table("t").unwrap();
        drop(db);

        let reopened = Database::open(&dir).unwrap();
        assert_eq!(reopened.table("u").unwrap().row(0), vec![Value::Int(7)]);
        let t = reopened.table("t").unwrap();
        assert_eq!(rows_of(&live), rows_of(&t));
        assert_eq!(t.version(), live.version());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A WAL truncation failure mid-checkpoint must not leave the
    /// in-memory manifest mirror stale (a stale mirror would hand the
    /// next checkpoint file ids the published manifest references,
    /// clobbering live segment files): the mirror updates at manifest
    /// publish, the store wedges, and a retried checkpoint heals it.
    #[test]
    fn failed_wal_truncate_wedges_with_a_fresh_manifest_mirror() {
        let dir = tmp("trunc-fail");
        let db = seeded_db();
        db.save(&dir).unwrap();
        db.append_rows("t", vec![vec!["h0".into(), 1.0.into()]])
            .unwrap();
        let live = db.table("t").unwrap();

        // Sabotage the truncation: make the WAL path un-creatable.
        let wal_path = dir.join(wal::Wal::FILE_NAME);
        std::fs::remove_file(&wal_path).unwrap();
        std::fs::create_dir(&wal_path).unwrap();
        assert!(db.checkpoint().is_err());
        let summary = db.durability_summary().unwrap();
        assert!(summary.wedged.is_some(), "truncate failure wedges");
        // The summary reads the mirror — it must reflect the
        // *published* manifest (sealed append included), not the
        // pre-checkpoint state.
        assert_eq!(summary.tables[0].2, 21, "mirror tracks the publish");
        let published = Manifest::read(&dir).unwrap();
        assert_eq!(summary.tables[0].3, published.tables[0].chunks.len());
        // Appends are refused while wedged — nothing can diverge.
        assert!(db
            .append_rows("t", vec![vec!["h1".into(), 2.0.into()]])
            .is_err());

        // Heal: restore a writable WAL path, retry the checkpoint.
        std::fs::remove_dir(&wal_path).unwrap();
        db.checkpoint().unwrap();
        assert!(db.durability_summary().unwrap().wedged.is_none());
        db.append_rows("t", vec![vec!["h2".into(), 3.0.into()]])
            .unwrap();
        let after = db.table("t").unwrap();
        assert_eq!(after.num_rows(), live.num_rows() + 1);
        // Sealing that append allocates *fresh* file ids past the
        // published manifest — a stale mirror would have reused them
        // and clobbered the files the manifest references.
        db.checkpoint().unwrap();
        let final_manifest = Manifest::read(&dir).unwrap();
        assert!(final_manifest.next_file_id > published.next_file_id);
        drop(db);
        let reopened = Database::open(&dir).unwrap();
        assert_eq!(rows_of(&reopened.table("t").unwrap()), rows_of(&after));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_segment_file_is_a_typed_open_error() {
        let dir = tmp("segcorrupt");
        let db = seeded_db();
        db.save(&dir).unwrap();
        drop(db);
        let seg = std::fs::read_dir(dir.join(SEGMENTS_DIR))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(Database::open(&dir), Err(DbError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Re-saving into a live database directory must never clobber
    /// state the directory's current manifest references: fresh file
    /// ids, old manifest + WAL intact until the new publish, and a
    /// strictly newer WAL epoch.
    #[test]
    fn resave_into_live_directory_is_non_destructive_until_publish() {
        let dir = tmp("resave");
        let db1 = seeded_db();
        db1.save(&dir).unwrap();
        db1.append_rows("t", vec![vec!["x1".into(), 1.0.into()]])
            .unwrap(); // acked, WAL-only
        let wal_path = dir.join(wal::Wal::FILE_NAME);
        let old_wal = std::fs::read(&wal_path).unwrap();
        let old_epoch = wal::peek_epoch(&wal_path).unwrap();

        // A different catalog replaces the directory (its version
        // counter overlaps db1's — exactly the cross-incarnation
        // collision hazard).
        let db2 = seeded_db();
        db2.append_rows("t", vec![vec!["y1".into(), 9.0.into()]])
            .unwrap();
        db2.save(&dir).unwrap();
        let expected = db2.table("t").unwrap();
        assert!(wal::peek_epoch(&wal_path).unwrap() > old_epoch);

        // Simulate the crash window between the new manifest's publish
        // and the WAL reset: put the previous incarnation's WAL back.
        std::fs::write(&wal_path, &old_wal).unwrap();
        let recovered = Database::open(&dir).unwrap();
        let t = recovered.table("t").unwrap();
        assert_eq!(t.num_rows(), expected.num_rows(), "stale WAL ignored");
        assert_eq!(t.version(), expected.version());
        for i in 0..t.num_rows() {
            assert_eq!(t.row(i), expected.row(i));
        }
        // And the directory is fully serviceable again (fresh epoch).
        recovered
            .append_rows("t", vec![vec!["z1".into(), 2.0.into()]])
            .unwrap();
        let after = recovered.table("t").unwrap();
        drop(recovered);
        let again = Database::open(&dir).unwrap();
        assert_eq!(again.table("t").unwrap().num_rows(), after.num_rows());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A re-save writes its chunk files under *fresh* ids — never
    /// reusing a name the directory's current manifest references —
    /// so a crash before the new manifest publishes leaves the old
    /// state (files, manifest, acknowledged WAL tail) fully intact.
    /// Old files disappear only via post-publish GC.
    #[test]
    fn resave_allocates_fresh_file_ids_never_reusing_referenced_ones() {
        let dir = tmp("resave-ids");
        let db1 = seeded_db();
        db1.save(&dir).unwrap();
        let old = Manifest::read(&dir).unwrap();
        let old_files: Vec<String> = old
            .tables
            .iter()
            .flat_map(|t| t.chunks.iter().map(|c| c.file.clone()))
            .collect();
        assert!(!old_files.is_empty());

        let db2 = seeded_db();
        db2.save(&dir).unwrap();
        let new = Manifest::read(&dir).unwrap();
        assert!(new.next_file_id > old.next_file_id);
        for t in &new.tables {
            for c in &t.chunks {
                assert!(
                    !old_files.contains(&c.file),
                    "{} was still referenced by the previous manifest",
                    c.file
                );
            }
        }
        // Post-publish GC removed the now-unreferenced old files.
        for f in &old_files {
            assert!(!dir.join(SEGMENTS_DIR).join(f).exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_directory_is_io_not_corrupt() {
        let dir = std::env::temp_dir().join(format!("memdb-store-nodir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(Database::open(&dir), Err(DbError::Io(_))));
    }
}
