//! The on-disk segment file: one immutable, checksummed chunk of a
//! table covering a contiguous row range `[start_row, start_row +
//! rows)`, holding every column's typed values for those rows.
//!
//! Layout (all sections are `len | crc32 | payload` frames from
//! [`super::format`]):
//!
//! ```text
//! section 0: header  — magic, format version, table name, start_row,
//!                      row count, column count
//! section i: column  — dtype tag, typed values, validity, and (string
//!                      columns) the dictionary slice this chunk
//!                      introduces: codes [dict_start, dict_end)
//! ```
//!
//! String chunks store dictionary *deltas*: codes are assigned in
//! first-occurrence row order, so the entries introduced by a chunk are
//! exactly the dictionary slice past everything earlier chunks carried.
//! Loading chunks in row order therefore rebuilds each column's
//! dictionary — and every row's code — bit-for-bit.

use crate::error::{DbError, DbResult};
use crate::segment::{SegmentData, Validity};
use crate::table::Table;
use crate::value::DataType;

use super::format::{corrupt, frame_section, read_section, Dec, Enc, Section};

/// Magic bytes opening every segment file header.
const MAGIC: &[u8; 8] = b"SDBSEG1\0";
/// Format version (bump on incompatible layout changes).
const FORMAT: u32 = 1;

/// One decoded column chunk.
#[derive(Debug)]
pub struct ChunkColumn {
    /// Typed values (placeholders where invalid, exactly as stored in
    /// memory — reconstruction is bit-identical).
    pub data: SegmentData,
    /// Validity mask.
    pub validity: Validity,
    /// Dictionary length before this chunk (string columns; 0 otherwise).
    pub dict_start: u64,
    /// Dictionary entries this chunk introduces (codes
    /// `dict_start..dict_start + len`).
    pub dict_entries: Vec<String>,
}

/// A decoded segment file.
#[derive(Debug)]
pub struct Chunk {
    /// Table this chunk belongs to.
    pub table: String,
    /// First logical row id covered.
    pub start_row: u64,
    /// Number of rows covered.
    pub rows: u64,
    /// One entry per schema column, in order.
    pub columns: Vec<ChunkColumn>,
}

/// Encode rows `[lo, hi)` of `table` as one segment file.
/// `dict_starts[c]` is the dictionary length column `c`'s earlier
/// chunks already carry (0 for non-string columns). Returns the file
/// bytes plus the per-column dictionary length after this chunk.
///
/// # Errors
/// `Internal` if a string column carries no dictionary — a broken
/// in-memory invariant surfaced as a typed error rather than a panic.
pub fn write_chunk(
    table: &Table,
    lo: usize,
    hi: usize,
    dict_starts: &[u64],
) -> DbResult<(Vec<u8>, Vec<u64>)> {
    debug_assert!(lo <= hi && hi <= table.num_rows());
    let ncols = table.schema().len();
    debug_assert_eq!(dict_starts.len(), ncols);

    let mut header = Enc::new();
    header.bytes(MAGIC);
    header.u32(FORMAT);
    header.str(table.name());
    header.u64(lo as u64);
    header.u64((hi - lo) as u64);
    header.u64(ncols as u64);
    let mut out = frame_section(&header.into_bytes());

    let mut dict_ends = Vec::with_capacity(ncols);
    for (c, &chunk_dict_start) in dict_starts.iter().enumerate() {
        let col = table.column_at(c);
        let mut e = Enc::new();
        e.dtype(col.data_type());

        // Gather values + validity for [lo, hi) across the column's
        // segments. Placeholder values of null rows are carried as-is,
        // so decode rebuilds the in-memory vectors bit-for-bit.
        let n = hi - lo;
        let mut mask: Vec<bool> = Vec::with_capacity(n);
        let mut any_null = false;
        let mut max_code: Option<u32> = None;
        match col.data_type() {
            DataType::Int64 => {
                let mut vals: Vec<i64> = Vec::with_capacity(n);
                gather(col, lo, hi, &mut mask, &mut any_null, |seg, i| {
                    if let SegmentData::Int64(v) = seg.data() {
                        if let Some(&x) = v.get(i) {
                            vals.push(x);
                        }
                    }
                });
                e.u64(vals.len() as u64);
                for v in &vals {
                    e.i64(*v);
                }
            }
            DataType::Float64 => {
                let mut vals: Vec<f64> = Vec::with_capacity(n);
                gather(col, lo, hi, &mut mask, &mut any_null, |seg, i| {
                    if let SegmentData::Float64(v) = seg.data() {
                        if let Some(&x) = v.get(i) {
                            vals.push(x);
                        }
                    }
                });
                e.u64(vals.len() as u64);
                for v in &vals {
                    e.f64(*v);
                }
            }
            DataType::Str => {
                let mut vals: Vec<u32> = Vec::with_capacity(n);
                gather(col, lo, hi, &mut mask, &mut any_null, |seg, i| {
                    if let SegmentData::Str(v) = seg.data() {
                        if let Some(&x) = v.get(i) {
                            vals.push(x);
                        }
                    }
                });
                // Codes of *valid* rows determine the dictionary slice
                // this chunk introduces (placeholders of null rows are
                // unspecified and excluded).
                for (i, &code) in vals.iter().enumerate() {
                    if mask.get(i).copied().unwrap_or(true) {
                        max_code = Some(max_code.map_or(code, |m: u32| m.max(code)));
                    }
                }
                e.u64(vals.len() as u64);
                for v in &vals {
                    e.u32(*v);
                }
            }
            DataType::Bool => {
                let mut vals: Vec<bool> = Vec::with_capacity(n);
                gather(col, lo, hi, &mut mask, &mut any_null, |seg, i| {
                    if let SegmentData::Bool(v) = seg.data() {
                        if let Some(&x) = v.get(i) {
                            vals.push(x);
                        }
                    }
                });
                e.u64(vals.len() as u64);
                for v in &vals {
                    e.u8(*v as u8);
                }
            }
        }

        if any_null {
            e.u8(1);
            for &m in &mask {
                e.u8(m as u8);
            }
        } else {
            e.u8(0);
        }

        let dict_end = if col.data_type() == DataType::Str {
            let start = chunk_dict_start;
            let end = max_code.map_or(start, |m| start.max(m as u64 + 1));
            let dict = col.str_dict().ok_or_else(|| {
                DbError::Internal(format!(
                    "table {}: string column {c} carries no dictionary",
                    table.name()
                ))
            })?;
            e.u64(start);
            e.u64(end - start);
            for code in start..end {
                e.str(dict.value(code as u32));
            }
            end
        } else {
            0
        };
        dict_ends.push(dict_end);
        out.extend_from_slice(&frame_section(&e.into_bytes()));
    }
    Ok((out, dict_ends))
}

/// Visit rows `[lo, hi)` of `col` in order, recording validity and
/// handing each (segment, local index) to `emit`.
fn gather(
    col: &crate::column::Column,
    lo: usize,
    hi: usize,
    mask: &mut Vec<bool>,
    any_null: &mut bool,
    mut emit: impl FnMut(&crate::segment::ColumnSegment, usize),
) {
    for (start, seg) in col.segments() {
        let seg_end = start + seg.len();
        if seg_end <= lo || start >= hi {
            continue;
        }
        let from = lo.max(start) - start;
        let to = hi.min(seg_end) - start;
        for i in from..to {
            let valid = seg.is_valid(i);
            *any_null |= !valid;
            mask.push(valid);
            emit(seg, i);
        }
    }
}

/// Decode one segment file.
///
/// # Errors
/// `Corrupt` on checksum mismatch, truncation, bad magic/format, or any
/// structural inconsistency (wrong column count, mask length, code out
/// of dictionary range).
pub fn read_chunk(bytes: &[u8], what: &str) -> DbResult<Chunk> {
    let mut pos = 0usize;
    let mut next_section = |ctx: &str| -> DbResult<&[u8]> {
        match read_section(bytes, pos) {
            Section::Ok(payload, consumed) => {
                pos += consumed;
                Ok(payload)
            }
            Section::BadChecksum => Err(corrupt(format!("{what}: {ctx}: checksum mismatch"))),
            Section::End | Section::Torn => Err(corrupt(format!("{what}: {ctx}: truncated"))),
        }
    };

    let header = next_section("header")?;
    let mut d = Dec::new(header, what);
    if d.bytes()? != MAGIC {
        return Err(corrupt(format!("{what}: not a segment file (bad magic)")));
    }
    let format = d.u32()?;
    if format != FORMAT {
        return Err(corrupt(format!(
            "{what}: unsupported segment format {format} (expected {FORMAT})"
        )));
    }
    let table = d.str()?;
    let start_row = d.u64()?;
    let rows = d.u64()?;
    // The columns live in their own sections after the header, so the
    // count cannot be validated against this payload's size — bound it
    // explicitly so a corrupt header cannot trigger a huge allocation.
    let ncols = d.u64()?;
    if ncols > 1 << 20 {
        return Err(corrupt(format!("{what}: absurd column count {ncols}")));
    }
    let ncols = ncols as usize;

    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let payload = next_section(&format!("column {c}"))?;
        let mut d = Dec::new(payload, what);
        let dtype = d.dtype()?;
        let nvals = d.count(1)?;
        if nvals as u64 != rows {
            return Err(corrupt(format!(
                "{what}: column {c} holds {nvals} values for {rows} rows"
            )));
        }
        let data = match dtype {
            DataType::Int64 => {
                let mut v = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    v.push(d.i64()?);
                }
                SegmentData::Int64(v)
            }
            DataType::Float64 => {
                let mut v = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    v.push(d.f64()?);
                }
                SegmentData::Float64(v)
            }
            DataType::Str => {
                let mut v = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    v.push(d.u32()?);
                }
                SegmentData::Str(v)
            }
            DataType::Bool => {
                let mut v = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    v.push(d.u8()? != 0);
                }
                SegmentData::Bool(v)
            }
        };
        let validity = match d.u8()? {
            0 => Validity::from_mask(None),
            1 => {
                let mut mask = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    mask.push(d.u8()? != 0);
                }
                Validity::from_mask(Some(mask))
            }
            t => return Err(corrupt(format!("{what}: bad validity tag {t}"))),
        };
        let (dict_start, dict_entries) = if dtype == DataType::Str {
            let start = d.u64()?;
            let n = d.count(1)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(d.str()?);
            }
            // Every valid row's code must fall inside the dictionary as
            // of this chunk.
            let dict_len = start + entries.len() as u64;
            if let SegmentData::Str(codes) = &data {
                for (i, &code) in codes.iter().enumerate() {
                    if validity.is_valid(i) && code as u64 >= dict_len {
                        return Err(corrupt(format!(
                            "{what}: column {c} row {i} code {code} outside dictionary ({dict_len} entries)"
                        )));
                    }
                }
            }
            (start, entries)
        } else {
            (0, Vec::new())
        };
        if !d.is_done() {
            return Err(corrupt(format!("{what}: column {c}: trailing bytes")));
        }
        columns.push(ChunkColumn {
            data,
            validity,
            dict_start,
            dict_entries,
        });
    }
    if pos != bytes.len() {
        return Err(corrupt(format!("{what}: trailing bytes after last column")));
    }
    Ok(Chunk {
        table,
        start_row,
        rows,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::Value;

    fn mixed_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("s", DataType::Str),
            ColumnDef::measure("f", DataType::Float64),
            ColumnDef::ignored("i", DataType::Int64),
            ColumnDef::ignored("b", DataType::Bool),
        ])
        .unwrap();
        let mut t = Table::new("mixed", schema);
        let rows: Vec<Vec<Value>> = vec![
            vec!["x".into(), 1.5.into(), Value::Int(-3), Value::Bool(true)],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec!["y".into(), (-0.0).into(), Value::Int(7), Value::Bool(false)],
            vec!["x".into(), f64::NAN.into(), Value::Int(0), Value::Null],
        ];
        for r in rows {
            t.push_row(r).unwrap();
        }
        t.seal_segments();
        t
    }

    #[test]
    fn chunk_roundtrip_preserves_values_and_dict() {
        let t = mixed_table();
        let (bytes, dict_ends) = write_chunk(&t, 0, t.num_rows(), &[0, 0, 0, 0]).unwrap();
        assert_eq!(dict_ends, vec![2, 0, 0, 0], "two strings interned");
        let chunk = read_chunk(&bytes, "test").unwrap();
        assert_eq!(chunk.table, "mixed");
        assert_eq!(chunk.start_row, 0);
        assert_eq!(chunk.rows, 4);
        assert_eq!(chunk.columns.len(), 4);
        match &chunk.columns[0].data {
            SegmentData::Str(codes) => assert_eq!(codes, &vec![0, 0, 1, 0]),
            other => panic!("expected str codes, got {other:?}"),
        }
        assert_eq!(chunk.columns[0].dict_entries, vec!["x", "y"]);
        match &chunk.columns[1].data {
            SegmentData::Float64(v) => {
                assert_eq!(v[1].to_bits(), 0.0f64.to_bits(), "null placeholder");
                assert_eq!(v[2].to_bits(), (-0.0f64).to_bits());
                assert!(v[3].is_nan());
            }
            other => panic!("expected floats, got {other:?}"),
        }
        assert!(!chunk.columns[0].validity.is_valid(1));
        assert!(chunk.columns[0].validity.is_valid(2));
        assert!(!chunk.columns[3].validity.is_valid(3));
    }

    #[test]
    fn partial_range_chunks_carry_dict_deltas() {
        let t = mixed_table();
        let (b1, ends1) = write_chunk(&t, 0, 2, &[0, 0, 0, 0]).unwrap();
        let (b2, ends2) = write_chunk(&t, 2, 4, &ends1).unwrap();
        assert_eq!(ends1[0], 1, "only \"x\" in rows 0..2");
        assert_eq!(ends2[0], 2, "\"y\" introduced by rows 2..4");
        let c1 = read_chunk(&b1, "c1").unwrap();
        let c2 = read_chunk(&b2, "c2").unwrap();
        assert_eq!(c1.columns[0].dict_entries, vec!["x"]);
        assert_eq!(c2.columns[0].dict_start, 1);
        assert_eq!(c2.columns[0].dict_entries, vec!["y"]);
    }

    #[test]
    fn corrupted_chunks_are_typed_errors_never_panics() {
        let t = mixed_table();
        let (bytes, _) = write_chunk(&t, 0, t.num_rows(), &[0, 0, 0, 0]).unwrap();
        // Flip every byte position one at a time would be slow; probe a
        // spread of positions across header and column sections.
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xA5;
            match read_chunk(&bad, "fuzz") {
                Err(DbError::Corrupt(_)) => {}
                Err(other) => panic!("position {pos}: non-Corrupt error {other:?}"),
                Ok(_) => panic!("position {pos}: corruption not detected"),
            }
        }
        // Truncations at every section boundary fail cleanly too.
        for cut in [1, 11, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                read_chunk(&bytes[..cut], "trunc"),
                Err(DbError::Corrupt(_))
            ));
        }
    }
}
