//! Write-ahead log for catalog mutations.
//!
//! Every [`crate::Database::append_rows`] batch on a durable catalog is
//! appended (and optionally fsynced) here *before* the new table version
//! is published in memory — an acknowledged append is on disk even if
//! the process dies the next instant. Drops are logged the same way
//! (registrations checkpoint directly instead — their contents can be
//! arbitrarily large), so manifest + WAL tail together reproduce the
//! exact crash-time catalog.
//!
//! Records are checksummed section frames ([`super::format`]). Replay
//! semantics:
//!
//! * a **torn tail** (the file ends mid-record, or the *last* record's
//!   checksum fails) is a normal crash artifact — the torn bytes were
//!   never acknowledged and are dropped (and truncated away on open);
//! * a bad record **followed by more valid data** cannot be a torn tail
//!   and is reported as [`crate::DbError::Corrupt`] — acknowledged data
//!   after it would otherwise be silently lost;
//! * every record carries the catalog version it published; records at
//!   or below the manifest's catalog version are already covered by the
//!   manifest (a crash between manifest publish and WAL truncation) and
//!   are skipped idempotently.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::DbResult;
use crate::schema::{ColumnDef, Role, Schema, Semantic};
use crate::value::Value;

use super::format::{
    corrupt, frame_section, io_err, le_bytes_at, read_section, sync_dir, Dec, Enc, Section,
};

/// One logged catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `append_rows(table, rows)` published `version`.
    Append {
        /// Catalog version the append published.
        version: u64,
        /// Target table.
        table: String,
        /// The appended rows.
        rows: Vec<Vec<Value>>,
    },
    /// `register(table)` published `version` (a replacement if the name
    /// existed), carrying the full table contents. The live catalog
    /// checkpoints registrations directly instead of logging them
    /// (contents are unbounded — a WAL record would be an arbitrary
    /// memory and log-size spike), but replay keeps supporting the
    /// record so a log that holds one is still recoverable.
    Register {
        /// Catalog version the registration published.
        version: u64,
        /// Table name.
        table: String,
        /// Column definitions.
        schema: Vec<ColumnDef>,
        /// All rows of the registered table.
        rows: Vec<Vec<Value>>,
    },
    /// `drop_table(table)` published `version`.
    Drop {
        /// Catalog version the drop published.
        version: u64,
        /// Dropped table name.
        table: String,
    },
}

impl WalRecord {
    /// The catalog version this record published.
    pub fn version(&self) -> u64 {
        match self {
            WalRecord::Append { version, .. }
            | WalRecord::Register { version, .. }
            | WalRecord::Drop { version, .. } => *version,
        }
    }

    /// Encode to a record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Append {
                version,
                table,
                rows,
            } => WalRecord::encode_append(*version, table, rows),
            WalRecord::Register {
                version,
                table,
                schema,
                rows,
            } => {
                let mut e = Enc::new();
                e.u8(1);
                e.u64(*version);
                e.str(table);
                e.u64(schema.len() as u64);
                for c in schema {
                    encode_column_def(&mut e, c);
                }
                encode_rows(&mut e, rows);
                e.into_bytes()
            }
            WalRecord::Drop { version, table } => {
                let mut e = Enc::new();
                e.u8(2);
                e.u64(*version);
                e.str(table);
                e.into_bytes()
            }
        }
    }

    /// Encode an `Append` record payload from *borrowed* rows —
    /// byte-identical to `WalRecord::Append { .. }.encode()`. The hot
    /// ingest path logs every durable batch, and this lets it do so
    /// without deep-cloning the batch just to own the rows.
    pub fn encode_append(version: u64, table: &str, rows: &[Vec<Value>]) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(0);
        e.u64(version);
        e.str(table);
        encode_rows(&mut e, rows);
        e.into_bytes()
    }

    fn decode(payload: &[u8], what: &str) -> DbResult<WalRecord> {
        let mut d = Dec::new(payload, what);
        let rows_dec = |d: &mut Dec| -> DbResult<Vec<Vec<Value>>> {
            let n = d.count(1)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let m = d.count(1)?;
                let mut row = Vec::with_capacity(m);
                for _ in 0..m {
                    row.push(d.value()?);
                }
                rows.push(row);
            }
            Ok(rows)
        };
        let rec = match d.u8()? {
            0 => {
                let version = d.u64()?;
                let table = d.str()?;
                let rows = rows_dec(&mut d)?;
                WalRecord::Append {
                    version,
                    table,
                    rows,
                }
            }
            1 => {
                let version = d.u64()?;
                let table = d.str()?;
                let ncols = d.count(1)?;
                let mut schema = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    schema.push(decode_column_def(&mut d)?);
                }
                let rows = rows_dec(&mut d)?;
                WalRecord::Register {
                    version,
                    table,
                    schema,
                    rows,
                }
            }
            2 => WalRecord::Drop {
                version: d.u64()?,
                table: d.str()?,
            },
            t => return Err(corrupt(format!("{what}: bad WAL record tag {t}"))),
        };
        if !d.is_done() {
            return Err(corrupt(format!("{what}: trailing bytes in WAL record")));
        }
        Ok(rec)
    }
}

/// Encode a row batch (count, then per-row length-prefixed values).
fn encode_rows(e: &mut Enc, rows: &[Vec<Value>]) {
    e.u64(rows.len() as u64);
    for row in rows {
        e.u64(row.len() as u64);
        for v in row {
            e.value(v);
        }
    }
}

/// Encode one schema column definition.
pub(super) fn encode_column_def(e: &mut Enc, c: &ColumnDef) {
    e.str(&c.name);
    e.dtype(c.dtype);
    e.u8(match c.role {
        Role::Dimension => 0,
        Role::Measure => 1,
        Role::Ignore => 2,
    });
    e.u8(match c.semantic {
        Semantic::None => 0,
        Semantic::Geography => 1,
        Semantic::Temporal => 2,
        Semantic::Ordinal => 3,
    });
}

/// Decode one schema column definition.
pub(super) fn decode_column_def(d: &mut Dec) -> DbResult<ColumnDef> {
    let name = d.str()?;
    let dtype = d.dtype()?;
    let role = match d.u8()? {
        0 => Role::Dimension,
        1 => Role::Measure,
        2 => Role::Ignore,
        t => return Err(corrupt(format!("bad role tag {t}"))),
    };
    let semantic = match d.u8()? {
        0 => Semantic::None,
        1 => Semantic::Geography,
        2 => Semantic::Temporal,
        3 => Semantic::Ordinal,
        t => return Err(corrupt(format!("bad semantic tag {t}"))),
    };
    Ok(ColumnDef {
        name,
        dtype,
        role,
        semantic,
    })
}

/// Decode a schema column list into a validated [`Schema`].
pub(super) fn schema_from_defs(defs: Vec<ColumnDef>) -> DbResult<Schema> {
    Schema::new(defs).map_err(|e| corrupt(format!("stored schema invalid: {e}")))
}

/// The open write-ahead log of a durable database directory.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Store incarnation this log belongs to (must match the
    /// manifest's `wal_epoch` to be replayed — see [`replay`]).
    epoch: u64,
    /// Length of the framed header section (fixed per epoch).
    header_bytes: u64,
    /// Valid bytes currently in the log (header included).
    bytes: u64,
    /// Records currently in the log.
    records: u64,
    /// Set when a failed append left bytes past `bytes` that could not
    /// be truncated away: the tail is torn and appending after it would
    /// misalign the frame chain, so further appends are refused until a
    /// reset/truncate recreates the file.
    broken: Option<String>,
}

/// Magic bytes opening the WAL header section.
const HEADER_MAGIC: &[u8; 8] = b"SDBWAL1\0";

/// The framed header section a (re)initialized WAL file starts with.
fn header_frame(epoch: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(HEADER_MAGIC);
    e.u64(epoch);
    frame_section(&e.into_bytes())
}

impl Wal {
    /// File name inside the database directory.
    pub const FILE_NAME: &'static str = "wal.log";

    /// Reset the WAL at `path` to an empty log of the given epoch:
    /// truncate and write a fresh header. Used when a published
    /// manifest has made any previous contents redundant (checkpoint)
    /// or stale (a re-save stamped a new epoch).
    pub fn reset(path: &Path, epoch: u64) -> DbResult<Wal> {
        let header = header_frame(epoch);
        {
            let mut f = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
            f.write_all(&header).map_err(|e| io_err(path, e))?;
            f.sync_all().map_err(|e| io_err(path, e))?;
        }
        // Make the file's directory entry durable too: losing it to a
        // power loss would make every fsynced append vanish with it
        // (a missing log replays as "stale" — silently empty).
        if let Some(dir) = path.parent() {
            sync_dir(dir);
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            epoch,
            header_bytes: header.len() as u64,
            bytes: header.len() as u64,
            records: 0,
            broken: None,
        })
    }

    /// Resume appending to an existing WAL whose header matched
    /// `epoch`, positioned at `valid_bytes` — replay determines that
    /// offset and any torn tail beyond it is truncated away here.
    pub fn resume(path: &Path, epoch: u64, valid_bytes: u64, records: u64) -> DbResult<Wal> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        let actual = file.metadata().map_err(|e| io_err(path, e))?.len();
        if actual > valid_bytes {
            // Drop the torn tail so future appends start on a record
            // boundary.
            truncate_file(path, valid_bytes)?;
        }
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            epoch,
            header_bytes: header_frame(epoch).len() as u64,
            bytes: valid_bytes,
            records,
            broken: None,
        })
    }

    /// Append one record, optionally fsyncing before returning — the
    /// durability point of an acknowledged mutation.
    ///
    /// A failed write (short `write_all` on a full disk) can leave a
    /// torn partial frame in the file, and a failed fsync can leave a
    /// fully-written record that was never acknowledged; both would
    /// poison replay — appends after a partial frame misalign the frame
    /// chain (acknowledged records behind it read as a torn tail and
    /// are silently dropped), and an unacknowledged record must not
    /// reappear on recovery. So on any error the tail is truncated back
    /// to the last acknowledged byte before returning; if even that
    /// fails the log refuses further appends (retrying the repair on
    /// each attempt) until it succeeds or a checkpoint/re-save
    /// recreates the file. The one residual window: if both the append
    /// and every repair fail — a disk erroring on fsync *and* on
    /// truncate — and the process then crashes, a fully-written
    /// unacknowledged record can survive to replay; no WAL can mark a
    /// tail invalid on a disk it cannot write to.
    pub fn append(&mut self, record: &WalRecord, sync: bool) -> DbResult<()> {
        self.append_payload(&record.encode(), sync)
    }

    /// [`Wal::append`] of an already-encoded record payload (see
    /// [`WalRecord::encode_append`]).
    pub fn append_payload(&mut self, payload: &[u8], sync: bool) -> DbResult<()> {
        if let Some(b) = &self.broken {
            // Retry the repair: a transient failure (say, a full disk
            // that has since gained space) heals here instead of
            // wedging the store until the next checkpoint.
            if self.truncate_to_valid().is_err() {
                return Err(crate::error::DbError::Io(format!(
                    "WAL {} has an unrepaired torn tail ({b}); checkpoint or re-save to recover",
                    self.path.display()
                )));
            }
            self.broken = None;
        }
        let framed = frame_section(payload);
        let written = (|| {
            self.file.write_all(&framed)?;
            if sync {
                self.file.sync_all()?;
            }
            Ok(())
        })();
        if let Err(e) = written {
            let err = io_err(&self.path, e);
            if let Err(repair) = self.truncate_to_valid() {
                self.broken = Some(repair.to_string());
            }
            return Err(err);
        }
        self.bytes += framed.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Cut the file back to the valid prefix (`self.bytes`), discarding
    /// whatever a failed append left behind, and sync the truncation.
    fn truncate_to_valid(&self) -> DbResult<()> {
        truncate_file(&self.path, self.bytes)
    }

    /// Why this log is refusing appends, if a failed append could not
    /// be repaired (see [`Wal::append`]).
    pub fn broken_reason(&self) -> Option<&str> {
        self.broken.as_deref()
    }

    /// Bytes of pending records currently in the log (excluding the
    /// fixed header — 0 means "nothing to checkpoint").
    pub fn bytes(&self) -> u64 {
        self.bytes - self.header_bytes
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Reset the log to empty (after a checkpoint made its contents
    /// redundant), keeping the epoch.
    pub fn truncate(&mut self) -> DbResult<()> {
        *self = Wal::reset(&self.path, self.epoch)?;
        Ok(())
    }
}

/// Truncate the file at `path` to `len` bytes and sync the truncation
/// (crash-repair primitive: drops a torn tail so the file ends on a
/// record boundary). `set_len` needs a write handle, not append-mode.
fn truncate_file(path: &Path, len: u64) -> DbResult<()> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    f.set_len(len).map_err(|e| io_err(path, e))?;
    f.sync_all().map_err(|e| io_err(path, e))
}

/// Crash-injection test hook (used by the soak harness's crash/restart
/// injector and the crash tests): append a *torn* frame — a length
/// header promising more bytes than actually follow — to the WAL in
/// `dir`, simulating a process that died midway through writing an
/// unacknowledged record. Replay treats it exactly like any torn tail:
/// the torn bytes are dropped and truncated away on the next open, and
/// every acknowledged record survives. Returns the torn bytes appended.
///
/// Only inject when no live [`Wal`] handle will append afterwards: a
/// real record written *behind* the junk would make the junk read as
/// mid-log corruption (a bad record followed by valid data), which
/// recovery refuses to drop silently.
///
/// # Errors
/// `Io` when `dir` holds no WAL file or the append fails.
pub fn inject_torn_tail(dir: &Path) -> DbResult<u64> {
    let path = dir.join(Wal::FILE_NAME);
    let mut file = OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    let mut torn = Vec::with_capacity(38);
    torn.extend_from_slice(&1_000u64.to_le_bytes());
    torn.extend_from_slice(&[0xAB; 30]);
    file.write_all(&torn).map_err(|e| io_err(&path, e))?;
    file.sync_all().map_err(|e| io_err(&path, e))?;
    Ok(torn.len() as u64)
}

/// Result of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// The decoded records, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes covered by the header plus those records (the valid
    /// prefix — what [`Wal::resume`] positions at).
    pub valid_bytes: u64,
    /// Bytes of torn tail dropped (0 for a clean log).
    pub torn_bytes: u64,
    /// The log belongs to a different store incarnation (epoch
    /// mismatch), is missing, or was never initialized: it carries no
    /// usable records and the caller should [`Wal::reset`] it. A crash
    /// between a re-save's manifest publish and its WAL reset lands
    /// here — the previous incarnation's records must not replay onto
    /// the newly-saved catalog.
    pub stale: bool,
}

impl Replay {
    fn stale() -> Replay {
        Replay {
            records: Vec::new(),
            valid_bytes: 0,
            torn_bytes: 0,
            stale: true,
        }
    }
}

/// Read and decode the WAL at `path`, accepting only records of the
/// store incarnation `expected_epoch` (the manifest's `wal_epoch`).
///
/// # Errors
/// `Io` on read failures; `Corrupt` when a bad record is followed by
/// further valid data (mid-log corruption, not a torn tail).
pub fn replay(path: &Path, expected_epoch: u64) -> DbResult<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::stale()),
        Err(e) => return Err(io_err(path, e)),
    };
    let what = format!("WAL {}", path.display());

    // Header first: a missing/torn header is a crash during a reset
    // (contents were redundant then) — stale. A corrupted header with
    // valid records after it is indistinguishable from lost
    // acknowledged data — refuse.
    let mut pos = 0usize;
    match read_section(&bytes, pos) {
        Section::Ok(payload, consumed) => {
            let mut d = Dec::new(payload, &what);
            if d.bytes()? != HEADER_MAGIC {
                return Err(corrupt(format!("{what}: bad header magic")));
            }
            let epoch = d.u64()?;
            if epoch != expected_epoch {
                return Ok(Replay::stale());
            }
            pos += consumed;
        }
        Section::End | Section::Torn => return Ok(Replay::stale()),
        Section::BadChecksum => {
            if frame_end(&bytes, 0).is_some_and(|end| valid_section_ahead(&bytes, end)) {
                return Err(corrupt(format!(
                    "{what}: corrupted header with records after it"
                )));
            }
            return Ok(Replay::stale());
        }
    }

    let mut records = Vec::new();
    loop {
        match read_section(&bytes, pos) {
            Section::Ok(payload, consumed) => {
                records.push(WalRecord::decode(payload, &what)?);
                pos += consumed;
            }
            Section::End => {
                return Ok(Replay {
                    records,
                    valid_bytes: pos as u64,
                    torn_bytes: 0,
                    stale: false,
                })
            }
            Section::Torn => {
                return Ok(Replay {
                    records,
                    valid_bytes: pos as u64,
                    torn_bytes: (bytes.len() - pos) as u64,
                    stale: false,
                })
            }
            Section::BadChecksum => {
                // Distinguish a corrupted record from a torn tail: walk
                // the frame chain forward — if any later frame parses
                // as a valid section, data beyond the bad record exists
                // and dropping it would silently lose acknowledged
                // work. (Payload bit rot leaves the length headers
                // intact, so the chain stays aligned; a corrupted
                // *length* field misaligns it, which is inherently
                // ambiguous and reads as a torn tail.)
                if frame_end(&bytes, pos).is_some_and(|end| valid_section_ahead(&bytes, end)) {
                    return Err(corrupt(format!(
                        "{what}: checksum mismatch at offset {pos} with valid records after it"
                    )));
                }
                return Ok(Replay {
                    records,
                    valid_bytes: pos as u64,
                    torn_bytes: (bytes.len() - pos) as u64,
                    stale: false,
                });
            }
        }
    }
}

/// Best-effort read of the epoch in the WAL header at `path` (used by
/// a re-save to pick a strictly newer epoch even when the manifest is
/// unreadable). `None` when missing/unreadable/torn.
pub fn peek_epoch(path: &Path) -> Option<u64> {
    let bytes = std::fs::read(path).ok()?;
    let Section::Ok(payload, _) = read_section(&bytes, 0) else {
        return None;
    };
    let mut d = Dec::new(payload, "wal header");
    if d.bytes().ok()? != HEADER_MAGIC {
        return None;
    }
    d.u64().ok()
}

/// End offset of the (complete, already length-validated) frame
/// starting at `pos`; `None` when no complete header is there after
/// all (the caller then treats the tail as torn).
fn frame_end(bytes: &[u8], pos: usize) -> Option<usize> {
    let len = le_bytes_at::<8>(bytes, pos).map(u64::from_le_bytes)?;
    pos.checked_add(12)?.checked_add(len as usize)
}

/// Does any complete, checksum-valid section start on the frame chain
/// at or after `pos`? Walks successive frames across any number of
/// corrupted-payload records.
fn valid_section_ahead(bytes: &[u8], mut pos: usize) -> bool {
    while pos < bytes.len() {
        match read_section(bytes, pos) {
            Section::Ok(..) => return true,
            // Complete frame, bad payload: its length header is intact
            // (read_section validated it), keep walking.
            Section::BadChecksum => match frame_end(bytes, pos) {
                Some(end) => pos = end,
                None => return false,
            },
            Section::End | Section::Torn => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::value::DataType;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("memdb-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(Wal::FILE_NAME)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                version: 1,
                table: "t".into(),
                schema: vec![
                    ColumnDef::dimension("d", DataType::Str),
                    ColumnDef::measure("m", DataType::Float64),
                ],
                rows: vec![vec!["a".into(), 1.5.into()]],
            },
            WalRecord::Append {
                version: 2,
                table: "t".into(),
                rows: vec![vec!["b".into(), Value::Null], vec!["c".into(), 2.0.into()]],
            },
            WalRecord::Drop {
                version: 3,
                table: "t".into(),
            },
        ]
    }

    /// Byte offset where record `i` (0-based) starts, given the fixed
    /// header frame.
    fn record_offset(records: &[WalRecord], i: usize) -> usize {
        header_frame(0).len()
            + records[..i]
                .iter()
                .map(|r| frame_section(&r.encode()).len())
                .sum::<usize>()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::reset(&path, 7).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        assert_eq!(wal.records(), 3);
        let replayed = replay(&path, 7).unwrap();
        assert!(!replayed.stale);
        assert_eq!(replayed.records, sample_records());
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(
            replayed.valid_bytes,
            wal.bytes() + header_frame(7).len() as u64
        );
        assert_eq!(peek_epoch(&path), Some(7));

        // A different incarnation's manifest ignores this log entirely.
        let other = replay(&path, 8).unwrap();
        assert!(other.stale);
        assert!(other.records.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        let mut wal = Wal::reset(&path, 1).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        drop(wal);
        // Simulate a crash mid-write: cut the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let replayed = replay(&path, 1).unwrap();
        assert_eq!(replayed.records.len(), 2, "only the torn record is lost");
        assert_eq!(replayed.records, sample_records()[..2]);
        assert!(replayed.torn_bytes > 0);
        assert!(replayed.valid_bytes < full);

        // Resuming truncates the torn tail and appends cleanly after.
        let mut wal = Wal::resume(&path, 1, replayed.valid_bytes, 2).unwrap();
        wal.append(&sample_records()[2], true).unwrap();
        let replayed = replay(&path, 1).unwrap();
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[2], sample_records()[2]);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let path = tmp("midlog");
        let mut wal = Wal::reset(&path, 1).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        drop(wal);
        // Flip a byte inside the FIRST record's payload: records after
        // it are still valid, so this is corruption, not a torn tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let off = record_offset(&sample_records(), 0) + 20;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path, 1), Err(DbError::Corrupt(_))));
    }

    /// Two *adjacent* corrupted records followed by a valid one must
    /// still read as corruption — the frame-chain scan walks past any
    /// number of bad-payload records before deciding "torn tail".
    #[test]
    fn adjacent_corrupted_records_before_valid_data_are_corrupt() {
        let path = tmp("midlog2");
        let mut wal = Wal::reset(&path, 1).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let records = sample_records();
        for i in 0..2 {
            let off = record_offset(&records, i) + 20;
            bytes[off] ^= 0xFF;
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path, 1), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn corrupted_header_with_records_after_is_corrupt() {
        let path = tmp("headerflip");
        let mut wal = Wal::reset(&path, 1).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0xFF; // inside the header payload
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path, 1), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn corrupted_final_record_counts_as_torn() {
        let path = tmp("tailflip");
        let mut wal = Wal::reset(&path, 1).unwrap();
        for r in sample_records() {
            wal.append(&r, true).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path, 1).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert!(replayed.torn_bytes > 0);
    }

    /// The file states a failed append can leave behind — a torn
    /// partial frame (short write) or a complete but unacknowledged
    /// record (failed fsync) — are truncated away by the repair the
    /// error path runs, so later acknowledged appends stay on the
    /// frame chain and replay never drops or resurrects anything.
    #[test]
    fn failed_append_leftovers_are_truncated_before_further_appends() {
        use std::io::Write as _;
        let records = sample_records();
        let unacked = frame_section(&records[1].encode());
        for (name, leftover) in [
            ("repair-torn", &unacked[..7]),
            ("repair-full", &unacked[..]),
        ] {
            let path = tmp(name);
            let mut wal = Wal::reset(&path, 1).unwrap();
            wal.append(&records[0], true).unwrap();
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(leftover).unwrap();
            drop(f);

            wal.truncate_to_valid().unwrap();
            wal.append(&records[2], true).unwrap();
            let replayed = replay(&path, 1).unwrap();
            assert!(!replayed.stale);
            assert_eq!(
                replayed.records,
                vec![records[0].clone(), records[2].clone()],
                "{name}: acknowledged records only, chain aligned"
            );
            assert_eq!(replayed.torn_bytes, 0, "{name}");
        }
    }

    /// A broken log retries its tail repair on the next append: once
    /// the repair can succeed, the torn bytes are discarded and the
    /// append lands cleanly.
    #[test]
    fn broken_wal_retries_repair_and_heals_on_next_append() {
        use std::io::Write as _;
        let path = tmp("broken-heal");
        let mut wal = Wal::reset(&path, 1).unwrap();
        wal.append(&sample_records()[0], true).unwrap();
        // Simulate a failed append whose repair also failed: torn
        // bytes past the valid prefix plus the in-memory refusal flag.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 9]).unwrap();
        drop(f);
        wal.broken = Some("simulated unrepaired tail".into());

        wal.append(&sample_records()[2], true).unwrap();
        assert!(wal.broken_reason().is_none(), "repair retried and healed");
        let replayed = replay(&path, 1).unwrap();
        assert_eq!(
            replayed.records,
            vec![sample_records()[0].clone(), sample_records()[2].clone()]
        );
        assert_eq!(replayed.torn_bytes, 0);
    }

    /// While the repair keeps failing, appends are refused loudly; a
    /// truncate (what a checkpoint runs) recreates the file and lifts
    /// the refusal.
    #[test]
    fn unrepairable_wal_refuses_appends_until_recreated() {
        let path = tmp("broken-stuck");
        let mut wal = Wal::reset(&path, 1).unwrap();
        wal.broken = Some("simulated unrepaired tail".into());
        // Make the repair impossible: the path cannot be opened for
        // writing at all.
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir(&path).unwrap();
        assert!(matches!(
            wal.append(&sample_records()[0], true),
            Err(DbError::Io(_))
        ));
        assert!(wal.broken_reason().is_some());

        std::fs::remove_dir(&path).unwrap();
        wal.truncate().unwrap();
        assert!(wal.broken_reason().is_none());
        wal.append(&sample_records()[0], true).unwrap();
        assert_eq!(replay(&path, 1).unwrap().records.len(), 1);
    }

    #[test]
    fn missing_or_uninitialized_logs_are_stale() {
        let path = tmp("missing").with_file_name("nonexistent.log");
        let replayed = replay(&path, 1).unwrap();
        assert!(replayed.stale);
        assert!(replayed.records.is_empty());
        assert_eq!(peek_epoch(&path), None);

        // Empty file (crash during a reset): stale, not an error.
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        assert!(replay(&path, 1).unwrap().stale);
        // Torn header likewise.
        std::fs::write(&path, &header_frame(1)[..5]).unwrap();
        assert!(replay(&path, 1).unwrap().stale);
    }

    #[test]
    fn truncate_keeps_the_epoch_and_empties_the_log() {
        let path = tmp("truncate");
        let mut wal = Wal::reset(&path, 9).unwrap();
        wal.append(&sample_records()[0], true).unwrap();
        assert!(wal.bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert_eq!(wal.records(), 0);
        assert_eq!(peek_epoch(&path), Some(9));
        wal.append(&sample_records()[1], true).unwrap();
        let replayed = replay(&path, 9).unwrap();
        assert_eq!(replayed.records, vec![sample_records()[1].clone()]);
    }
}
