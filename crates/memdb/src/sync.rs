//! Poisoned-lock recovery policy.
//!
//! The durable layer's contract is "never panic, always typed error" —
//! which means lock acquisition itself must not panic on poison. A
//! poisoned mutex only proves that *some* thread panicked while holding
//! the guard; every critical section in this crate either publishes its
//! state atomically (swap a fully-built value in) or is re-validated by
//! the next reader (checksummed sections, manifest decode), so the
//! protected data is never left half-written in a way a later observer
//! could misread. Under that discipline the right policy is to *recover*
//! the guard and continue, rather than propagate a panic across every
//! thread that touches the lock.
//!
//! These extension traits make the policy explicit and greppable: all
//! non-test code in `store`, `catalog`, and the `core` service acquires
//! locks through `lock_recovered` / `read_recovered` / `write_recovered`
//! instead of `lock().unwrap()`. The `seedb-lint` `panic-free-io` rule
//! enforces the absence of the latter; the `lock-order` rule recognizes
//! these methods as lock acquisitions.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-recovering acquisition for [`Mutex`].
pub trait MutexExt<T> {
    /// Lock, recovering the guard if a previous holder panicked.
    fn lock_recovered(&self) -> MutexGuard<'_, T>;
}

impl<T> MutexExt<T> for Mutex<T> {
    fn lock_recovered(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering acquisition for [`RwLock`].
pub trait RwLockExt<T> {
    /// Shared-lock, recovering the guard if a writer panicked.
    fn read_recovered(&self) -> RwLockReadGuard<'_, T>;
    /// Exclusive-lock, recovering the guard if a holder panicked.
    fn write_recovered(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_recovered(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_recovered(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "lock should be poisoned");
        assert_eq!(*m.lock_recovered(), 7);
        *m.lock_recovered() = 9;
        assert_eq!(*m.lock_recovered(), 9);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.read().is_err(), "rwlock should be poisoned");
        assert_eq!(*l.read_recovered(), 1);
        *l.write_recovered() = 2;
        assert_eq!(*l.read_recovered(), 2);
    }
}
