//! Tables: a schema plus segmented columnar data, with append lineage.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// Append-lineage checkpoints a table remembers, oldest first. Bounds
/// the lineage vector; cached states stamped at versions that have
/// fallen off the front simply fall back to a full recompute.
const MAX_LINEAGE: usize = 64;

/// An in-memory table: schema + one segmented [`Column`] per attribute.
///
/// Tables are append-only; SeeDB's workload is analytical
/// (scan/aggregate), so there is no update/delete path. Storage is
/// *segmented*: registering a table with a [`crate::Database`] seals its
/// segments, and [`crate::Database::append_rows`] publishes version
/// `v+1` as a new `Table` value that shares every sealed segment with
/// version `v` and adds exactly one new segment holding the appended
/// rows. Row ids and dictionary codes of shared segments never change,
/// which is what makes cached partial aggregates refreshable by
/// scanning only the delta rows (see [`Table::append_delta_since`]).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Catalog version stamp: 0 until the table is registered with a
    /// [`crate::Database`], which assigns a fresh value from its own
    /// monotonic counter. Result caches key on this to detect staleness.
    version: u64,
    /// `(version, rows)` checkpoints of this table's pure-append
    /// history, oldest first; the current version is the last entry.
    /// Registering (replacing) resets the lineage to a single entry, so
    /// a state computed against a *replaced* table can never be
    /// mistaken for an append ancestor.
    lineage: Vec<(u64, usize)>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(name: &str, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        Table {
            name: name.to_string(),
            schema,
            columns,
            rows: 0,
            version: 0,
            lineage: Vec::new(),
        }
    }

    /// An empty table with row capacity pre-reserved.
    pub fn with_capacity(name: &str, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.dtype, cap))
            .collect();
        Table {
            name: name.to_string(),
            schema,
            columns,
            rows: 0,
            version: 0,
            lineage: Vec::new(),
        }
    }

    /// Rebuild a sealed, stamped table from stored parts (the durable
    /// store's reconstruction path). Columns must already agree on row
    /// count and segment boundaries; `lineage` is the stored append
    /// history with the current `(version, rows)` as its last entry.
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        columns: Vec<Column>,
        rows: usize,
        version: u64,
        lineage: Vec<(u64, usize)>,
    ) -> Table {
        Table {
            name,
            schema,
            columns,
            rows,
            version,
            lineage,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Catalog version stamp. 0 for an unregistered table; registering
    /// (or re-registering) with a [`crate::Database`] assigns a fresh,
    /// strictly increasing value, so two registrations under the same
    /// name never share a version. Caches keyed on
    /// `(plan fingerprint, version)` therefore never serve results
    /// computed against a replaced table.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp a fresh registration (called by `Database::register`):
    /// seals all segments and resets the lineage to this single
    /// checkpoint. A registration is a *replacement*, never an append —
    /// states cached against any earlier version of the name must not
    /// be incrementally refreshed onto this table, and resetting the
    /// lineage makes [`Table::append_delta_since`] refuse them.
    pub(crate) fn stamp_registered(&mut self, version: u64) {
        self.seal_segments();
        self.version = version;
        self.lineage = vec![(version, self.rows)];
    }

    /// Stamp an append (called by `Database::append_rows`): seals the
    /// delta segment and extends the lineage with this checkpoint.
    pub(crate) fn stamp_appended(&mut self, version: u64) {
        self.seal_segments();
        self.version = version;
        self.lineage.push((version, self.rows));
        if self.lineage.len() > MAX_LINEAGE {
            let excess = self.lineage.len() - MAX_LINEAGE;
            self.lineage.drain(..excess);
        }
    }

    /// If this table is a pure-append descendant of `version`, the
    /// half-open row range `[rows_at_version, rows_now)` holding every
    /// row appended since — the *delta* an incrementally maintained
    /// partial aggregate must scan. `None` when `version` is not in the
    /// append lineage (the name was re-registered/replaced, the table
    /// was never at that version, or the checkpoint aged out of the
    /// bounded lineage) — callers must fall back to a full recompute.
    pub fn append_delta_since(&self, version: u64) -> Option<(usize, usize)> {
        self.lineage
            .iter()
            .find(|&&(v, _)| v == version)
            .map(|&(_, rows_then)| (rows_then, self.rows))
    }

    /// The `(version, rows)` append checkpoints, oldest first (bounded;
    /// the current version is always the last entry for a registered
    /// table).
    pub fn lineage(&self) -> &[(u64, usize)] {
        &self.lineage
    }

    /// Seal every column's open segment so subsequent pushes open a new
    /// one. Segment boundaries therefore align with published table
    /// versions.
    pub(crate) fn seal_segments(&mut self) {
        for c in &mut self.columns {
            c.seal();
        }
    }

    /// Number of storage segments (identical across columns: rows are
    /// pushed to all columns together and sealed together).
    pub fn num_segments(&self) -> usize {
        self.columns.first().map_or(0, Column::num_segments)
    }

    /// Segment count at which [`crate::Database::append_rows`] compacts
    /// a table instead of letting per-row segment lookups degrade
    /// unboundedly under long append histories.
    pub const SEGMENT_COMPACT_THRESHOLD: usize = 64;

    /// A single-segment rebuild of this table: same name, schema, rows
    /// (in order), version, and lineage.
    ///
    /// Compaction preserves everything cached state depends on: row ids
    /// are unchanged (row order is preserved), and dictionary codes are
    /// unchanged because re-interning strings in row order reproduces
    /// the original first-occurrence interning order exactly (all
    /// pushes — initial build and every append — happened in row
    /// order). Snapshots of previous versions keep their own segments;
    /// only the new version reads the compacted layout.
    ///
    /// # Errors
    /// Row round-trip errors (impossible for a well-typed table).
    pub(crate) fn compacted(&self) -> DbResult<Table> {
        let mut t = Table::with_capacity(&self.name, self.schema.clone(), self.rows);
        for i in 0..self.rows {
            t.push_row(self.row(i))?;
        }
        t.seal_segments();
        t.version = self.version;
        t.lineage = self.lineage.clone();
        Ok(t)
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row. Values must match the schema arity and types.
    ///
    /// # Errors
    /// `Schema` on arity mismatch; `TypeMismatch` on a bad value. On type
    /// error the row is *not* partially applied — the table stays
    /// consistent.
    pub fn push_row(&mut self, row: Vec<Value>) -> DbResult<()> {
        if row.len() != self.schema.len() {
            return Err(DbError::Schema(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        // Validate types before mutating any column so a failure cannot
        // leave columns at different lengths.
        for (v, def) in row.iter().zip(self.schema.columns()) {
            if let Some(t) = v.data_type() {
                let ok = t == def.dtype
                    || (def.dtype == crate::value::DataType::Float64
                        && t == crate::value::DataType::Int64);
                if !ok {
                    return Err(DbError::TypeMismatch {
                        expected: def.dtype.name().to_string(),
                        found: t.name().to_string(),
                        context: format!("column {}", def.name),
                    });
                }
            }
        }
        for (v, col) in row.into_iter().zip(self.columns.iter_mut()) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Column by index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> DbResult<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Materialize row `i` as values (for display / small results only).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Build a new table containing only the rows in `selection`
    /// (used by reservoir sampling and tests; analytical paths work on
    /// selections without materializing).
    pub fn materialize_selection(&self, name: &str, selection: &[u32]) -> DbResult<Table> {
        let mut t = Table::with_capacity(name, self.schema.clone(), selection.len());
        for &i in selection {
            t.push_row(self.row(i as usize))?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn sales_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["Cambridge, MA".into(), 180.55.into()])
            .unwrap();
        t.push_row(vec!["Seattle, WA".into(), 145.50.into()])
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.row(1),
            vec![Value::from("Seattle, WA"), Value::Float(145.5)]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("sales", sales_schema());
        let r = t.push_row(vec!["x".into()]);
        assert!(matches!(r, Err(DbError::Schema(_))));
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn type_mismatch_leaves_table_consistent() {
        let mut t = Table::new("sales", sales_schema());
        // amount is float; pushing a string into it must fail without
        // corrupting the store column.
        let r = t.push_row(vec!["x".into(), "oops".into()]);
        assert!(r.is_err());
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.column("store").unwrap().len(), 0);
        assert_eq!(t.column("amount").unwrap().len(), 0);
    }

    #[test]
    fn int_widens_into_float_measure() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["x".into(), Value::Int(3)]).unwrap();
        assert_eq!(t.column("amount").unwrap().get(0), Value::Float(3.0));
    }

    #[test]
    fn materialize_selection_picks_rows() {
        let mut t = Table::new("sales", sales_schema());
        for (s, a) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            t.push_row(vec![s.into(), a.into()]).unwrap();
        }
        let sub = t.materialize_selection("sub", &[0, 2]).unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.row(1)[0], Value::from("c"));
    }

    #[test]
    fn nulls_allowed_in_any_column() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.row(0), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn seal_aligns_segment_boundaries_across_columns() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["a".into(), 1.0.into()]).unwrap();
        t.seal_segments();
        t.push_row(vec!["b".into(), 2.0.into()]).unwrap();
        assert_eq!(t.num_segments(), 2);
        // Both columns see both segments; reads span them seamlessly.
        assert_eq!(t.row(0), vec![Value::from("a"), Value::Float(1.0)]);
        assert_eq!(t.row(1), vec![Value::from("b"), Value::Float(2.0)]);
    }

    #[test]
    fn lineage_stamps_and_delta_ranges() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["a".into(), 1.0.into()]).unwrap();
        assert!(t.lineage().is_empty());
        assert_eq!(t.append_delta_since(0), None, "unregistered: no lineage");

        t.stamp_registered(7);
        assert_eq!(t.lineage(), &[(7, 1)]);
        assert_eq!(t.append_delta_since(7), Some((1, 1)), "empty delta");

        t.push_row(vec!["b".into(), 2.0.into()]).unwrap();
        t.push_row(vec!["c".into(), 3.0.into()]).unwrap();
        t.stamp_appended(9);
        assert_eq!(t.append_delta_since(7), Some((1, 3)));
        assert_eq!(t.append_delta_since(9), Some((3, 3)));
        assert_eq!(t.append_delta_since(8), None, "never published at 8");

        // Re-registration resets the lineage: nothing older than the
        // replacement is append-refreshable.
        t.stamp_registered(12);
        assert_eq!(t.append_delta_since(7), None);
        assert_eq!(t.append_delta_since(9), None);
        assert_eq!(t.append_delta_since(12), Some((3, 3)));
    }

    #[test]
    fn lineage_is_bounded() {
        let mut t = Table::new("sales", sales_schema());
        t.stamp_registered(1);
        for v in 2..200u64 {
            t.stamp_appended(v);
        }
        assert!(t.lineage().len() <= 64);
        // The oldest checkpoints aged out; the newest survive.
        assert_eq!(t.append_delta_since(1), None);
        assert!(t.append_delta_since(199).is_some());
    }
}
