//! Tables: a schema plus columnar data.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// An in-memory table: schema + one [`Column`] per attribute.
///
/// Tables are append-only; SeeDB's workload is analytical (scan/aggregate),
/// so there is no update/delete path.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Catalog version stamp: 0 until the table is registered with a
    /// [`crate::Database`], which assigns a fresh value from its own
    /// monotonic counter. Result caches key on this to detect staleness.
    version: u64,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(name: &str, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        Table {
            name: name.to_string(),
            schema,
            columns,
            rows: 0,
            version: 0,
        }
    }

    /// An empty table with row capacity pre-reserved.
    pub fn with_capacity(name: &str, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.dtype, cap))
            .collect();
        Table {
            name: name.to_string(),
            schema,
            columns,
            rows: 0,
            version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Catalog version stamp. 0 for an unregistered table; registering
    /// (or re-registering) with a [`crate::Database`] assigns a fresh,
    /// strictly increasing value, so two registrations under the same
    /// name never share a version. Caches keyed on
    /// `(plan fingerprint, version)` therefore never serve results
    /// computed against a replaced table.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp the catalog version (called by `Database::register`).
    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row. Values must match the schema arity and types.
    ///
    /// # Errors
    /// `Schema` on arity mismatch; `TypeMismatch` on a bad value. On type
    /// error the row is *not* partially applied — the table stays
    /// consistent.
    pub fn push_row(&mut self, row: Vec<Value>) -> DbResult<()> {
        if row.len() != self.schema.len() {
            return Err(DbError::Schema(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        // Validate types before mutating any column so a failure cannot
        // leave columns at different lengths.
        for (v, def) in row.iter().zip(self.schema.columns()) {
            if let Some(t) = v.data_type() {
                let ok = t == def.dtype
                    || (def.dtype == crate::value::DataType::Float64
                        && t == crate::value::DataType::Int64);
                if !ok {
                    return Err(DbError::TypeMismatch {
                        expected: def.dtype.name().to_string(),
                        found: t.name().to_string(),
                        context: format!("column {}", def.name),
                    });
                }
            }
        }
        for (v, col) in row.into_iter().zip(self.columns.iter_mut()) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Column by index.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> DbResult<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Materialize row `i` as values (for display / small results only).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Build a new table containing only the rows in `selection`
    /// (used by reservoir sampling and tests; analytical paths work on
    /// selections without materializing).
    pub fn materialize_selection(&self, name: &str, selection: &[u32]) -> DbResult<Table> {
        let mut t = Table::with_capacity(name, self.schema.clone(), selection.len());
        for &i in selection {
            t.push_row(self.row(i as usize))?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn sales_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["Cambridge, MA".into(), 180.55.into()])
            .unwrap();
        t.push_row(vec!["Seattle, WA".into(), 145.50.into()])
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.row(1),
            vec![Value::from("Seattle, WA"), Value::Float(145.5)]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("sales", sales_schema());
        let r = t.push_row(vec!["x".into()]);
        assert!(matches!(r, Err(DbError::Schema(_))));
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn type_mismatch_leaves_table_consistent() {
        let mut t = Table::new("sales", sales_schema());
        // amount is float; pushing a string into it must fail without
        // corrupting the store column.
        let r = t.push_row(vec!["x".into(), "oops".into()]);
        assert!(r.is_err());
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.column("store").unwrap().len(), 0);
        assert_eq!(t.column("amount").unwrap().len(), 0);
    }

    #[test]
    fn int_widens_into_float_measure() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec!["x".into(), Value::Int(3)]).unwrap();
        assert_eq!(t.column("amount").unwrap().get(0), Value::Float(3.0));
    }

    #[test]
    fn materialize_selection_picks_rows() {
        let mut t = Table::new("sales", sales_schema());
        for (s, a) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            t.push_row(vec![s.into(), a.into()]).unwrap();
        }
        let sub = t.materialize_selection("sub", &[0, 2]).unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.row(1)[0], Value::from("c"));
    }

    #[test]
    fn nulls_allowed_in_any_column() {
        let mut t = Table::new("sales", sales_schema());
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.row(0), vec![Value::Null, Value::Null]);
    }
}
