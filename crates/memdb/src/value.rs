//! Scalar values and data types.
//!
//! memdb stores data columnar and typed; [`Value`] is the row-oriented
//! escape hatch used at API boundaries (row ingestion, result sets,
//! literals in predicates).

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string, dictionary-encoded in storage.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether values of this type can be aggregated numerically
    /// (`SUM`/`AVG`/...).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Str => "string",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically-typed scalar value.
///
/// `Null` is a first-class value: any column may contain nulls, which are
/// skipped by aggregates (SQL semantics) and never match comparison
/// predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints and floats coerce to `f64`,
    /// everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, without coercion from float.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison between two values.
    ///
    /// Returns `None` when either side is NULL or the types are not
    /// comparable (SQL three-valued logic: the comparison is "unknown" and
    /// the predicate does not match). Ints and floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Render the value the way a result table prints it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float64));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("s").as_f64(), None);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incompatible_comparison_is_unknown() {
        assert_eq!(Value::from("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn string_comparison_lexicographic() {
        assert_eq!(
            Value::from("apple").sql_cmp(&Value::from("banana")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn render_float_integral() {
        assert_eq!(Value::Float(3.0).render(), "3.0");
        assert_eq!(Value::Float(3.25).render(), "3.25");
        assert_eq!(Value::Null.render(), "NULL");
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int(4));
    }

    #[test]
    fn is_numeric_types() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }
}
