//! Reference-model property tests: the optimized aggregation kernels
//! (dictionary fast path, shared scans, per-aggregate predicates,
//! grouping sets) must agree exactly with a naive row-at-a-time
//! reference executor on randomly generated tables and queries.

use std::collections::BTreeMap;

use memdb::exec::{execute, execute_sets, AggFunc, AggSpec, Query, SetsQuery};
use memdb::{ColumnDef, DataType, Expr, Schema, Table, Value};
use proptest::prelude::*;

/// A randomly generated table: 2 string dims (one low-cardinality to hit
/// the dict fast path), 1 int dim, 1 float measure with nulls.
#[derive(Debug, Clone)]
struct TestData {
    rows: Vec<(Option<&'static str>, &'static str, i64, Option<f64>)>,
}

fn data_strategy() -> impl Strategy<Value = TestData> {
    let row = (
        proptest::option::weighted(0.9, proptest::sample::select(vec!["a", "b", "c"])),
        proptest::sample::select(vec!["x", "y", "z", "w", "u"]),
        0i64..4,
        proptest::option::weighted(0.85, -50.0f64..50.0),
    );
    proptest::collection::vec(row, 0..200).prop_map(|rows| TestData { rows })
}

fn build_table(data: &TestData) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::dimension("d1", DataType::Str),
        ColumnDef::dimension("d2", DataType::Str),
        ColumnDef::dimension("d3", DataType::Int64),
        ColumnDef::measure("m", DataType::Float64),
    ])
    .unwrap();
    let mut t = Table::new("t", schema);
    for (d1, d2, d3, m) in &data.rows {
        t.push_row(vec![
            d1.map(Value::from).unwrap_or(Value::Null),
            Value::from(*d2),
            Value::Int(*d3),
            m.map(Value::Float).unwrap_or(Value::Null),
        ])
        .unwrap();
    }
    t
}

/// Naive reference: group rows by the rendered key tuple, aggregate with
/// straightforward loops.
fn reference_aggregate(
    data: &TestData,
    group_cols: &[usize], // 0=d1, 1=d2, 2=d3
    func: AggFunc,
    filter_d2: Option<&str>,  // per-aggregate predicate: d2 == value
    where_d3_lt: Option<i64>, // scan filter: d3 < value
) -> BTreeMap<Vec<String>, Option<f64>> {
    let mut groups: BTreeMap<Vec<String>, Vec<f64>> = BTreeMap::new();
    let mut counts: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for (d1, d2, d3, m) in &data.rows {
        if let Some(limit) = where_d3_lt {
            if *d3 >= limit {
                continue;
            }
        }
        let key: Vec<String> = group_cols
            .iter()
            .map(|c| match c {
                0 => d1.map(|s| s.to_string()).unwrap_or_else(|| "NULL".into()),
                1 => d2.to_string(),
                2 => d3.to_string(),
                _ => unreachable!(),
            })
            .collect();
        counts.entry(key.clone()).or_insert(0);
        groups.entry(key.clone()).or_default();
        let passes = filter_d2.map(|v| *d2 == v).unwrap_or(true);
        if !passes {
            continue;
        }
        match func {
            AggFunc::Count => {
                *counts.get_mut(&key).unwrap() += 1;
            }
            _ => {
                if let Some(v) = m {
                    groups.get_mut(&key).unwrap().push(*v);
                }
            }
        }
    }
    let mut out = BTreeMap::new();
    for (key, vals) in groups {
        let count = counts[&key];
        let v = match func {
            AggFunc::Count => Some(count as f64),
            AggFunc::Sum => (!vals.is_empty()).then(|| vals.iter().sum()),
            AggFunc::Avg => {
                (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
            }
            AggFunc::Min => vals.iter().copied().reduce(f64::min),
            AggFunc::Max => vals.iter().copied().reduce(f64::max),
        };
        out.insert(key, v);
    }
    out
}

fn result_to_map(
    result: &memdb::ResultSet,
    num_group_cols: usize,
) -> BTreeMap<Vec<String>, Option<f64>> {
    result
        .rows
        .iter()
        .map(|r| {
            let key: Vec<String> = r[..num_group_cols].iter().map(Value::render).collect();
            let v = match &r[num_group_cols] {
                Value::Null => None,
                Value::Int(i) => Some(*i as f64),
                other => other.as_f64(),
            };
            (key, v)
        })
        .collect()
}

fn approx_eq(
    a: &BTreeMap<Vec<String>, Option<f64>>,
    b: &BTreeMap<Vec<String>, Option<f64>>,
) -> Result<(), String> {
    if a.keys().collect::<Vec<_>>() != b.keys().collect::<Vec<_>>() {
        return Err(format!(
            "group keys differ:\n  engine: {:?}\n  reference: {:?}",
            a.keys().collect::<Vec<_>>(),
            b.keys().collect::<Vec<_>>()
        ));
    }
    for (k, va) in a {
        let vb = &b[k];
        match (va, vb) {
            (None, None) => {}
            (Some(x), Some(y)) if (x - y).abs() < 1e-9 => {}
            _ => return Err(format!("group {k:?}: engine {va:?} vs reference {vb:?}")),
        }
    }
    Ok(())
}

const FUNCS: [AggFunc; 5] = [
    AggFunc::Count,
    AggFunc::Sum,
    AggFunc::Avg,
    AggFunc::Min,
    AggFunc::Max,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single group-by on the dict fast path (one string column) agrees
    /// with the reference for every aggregate function.
    #[test]
    fn single_dim_groupby_matches_reference(data in data_strategy(), func_idx in 0usize..5) {
        let func = FUNCS[func_idx];
        let t = build_table(&data);
        let spec = match func {
            AggFunc::Count => AggSpec::count_star(),
            f => AggSpec::new(f, "m"),
        };
        let q = Query::aggregate("t", vec!["d2"], vec![spec]);
        let out = execute(&t, &q).unwrap();
        let engine = result_to_map(&out.result, 1);
        let reference = reference_aggregate(&data, &[1], func, None, None);
        approx_eq(&engine, &reference).map_err(TestCaseError::fail)?;
    }

    /// Multi-column group-by (generic hashed path) agrees with the
    /// reference, including NULL groups.
    #[test]
    fn multi_dim_groupby_matches_reference(data in data_strategy(), func_idx in 0usize..5) {
        let func = FUNCS[func_idx];
        let t = build_table(&data);
        let spec = match func {
            AggFunc::Count => AggSpec::count_star(),
            f => AggSpec::new(f, "m"),
        };
        let q = Query::aggregate("t", vec!["d1", "d3"], vec![spec]);
        let out = execute(&t, &q).unwrap();
        let engine = result_to_map(&out.result, 2);
        let reference = reference_aggregate(&data, &[0, 2], func, None, None);
        approx_eq(&engine, &reference).map_err(TestCaseError::fail)?;
    }

    /// Per-aggregate predicates (the combined target/comparison rewrite)
    /// agree with running the reference twice.
    #[test]
    fn filtered_aggregates_match_reference(data in data_strategy()) {
        let t = build_table(&data);
        let q = Query::aggregate(
            "t",
            vec!["d2"],
            vec![
                AggSpec::new(AggFunc::Sum, "m")
                    .with_filter(Expr::col("d2").eq("x"))
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "m").with_alias("comparison"),
            ],
        );
        let out = execute(&t, &q).unwrap();
        // Column 1 = target, column 2 = comparison.
        let target: BTreeMap<Vec<String>, Option<f64>> = out
            .result
            .rows
            .iter()
            .map(|r| (vec![r[0].render()], r[1].as_f64()))
            .collect();
        let comparison: BTreeMap<Vec<String>, Option<f64>> = out
            .result
            .rows
            .iter()
            .map(|r| (vec![r[0].render()], r[2].as_f64()))
            .collect();
        let ref_target = reference_aggregate(&data, &[1], AggFunc::Sum, Some("x"), None);
        let ref_comparison = reference_aggregate(&data, &[1], AggFunc::Sum, None, None);
        approx_eq(&target, &ref_target).map_err(TestCaseError::fail)?;
        approx_eq(&comparison, &ref_comparison).map_err(TestCaseError::fail)?;
    }

    /// A WHERE filter agrees with pre-filtering the reference rows.
    #[test]
    fn where_filter_matches_reference(data in data_strategy(), limit in 0i64..5) {
        let t = build_table(&data);
        let q = Query::aggregate("t", vec!["d2"], vec![AggSpec::new(AggFunc::Avg, "m")])
            .with_filter(Expr::col("d3").lt(limit));
        let out = execute(&t, &q).unwrap();
        let engine = result_to_map(&out.result, 1);
        let reference = reference_aggregate(&data, &[1], AggFunc::Avg, None, Some(limit));
        approx_eq(&engine, &reference).map_err(TestCaseError::fail)?;
    }

    /// Grouping sets produce exactly what independent queries produce.
    #[test]
    fn grouping_sets_match_independent_queries(data in data_strategy()) {
        let t = build_table(&data);
        let aggs = vec![AggSpec::new(AggFunc::Sum, "m"), AggSpec::count_star()];
        let sets = SetsQuery {
            table: "t".into(),
            filter: None,
            sets: vec![vec!["d1".into()], vec!["d2".into()], vec!["d3".into()]],
            aggregates: aggs.clone(),
            sample: None,
        };
        let combined = execute_sets(&t, &sets).unwrap();
        for (i, dim) in ["d1", "d2", "d3"].iter().enumerate() {
            let q = Query::aggregate("t", vec![dim], aggs.clone());
            let single = execute(&t, &q).unwrap();
            prop_assert_eq!(
                &combined.results[i].rows,
                &single.result.rows,
                "grouping set {} differs from standalone query",
                dim
            );
        }
        // And the shared scan really is one scan.
        prop_assert_eq!(combined.stats.table_scans, 1);
    }
}
