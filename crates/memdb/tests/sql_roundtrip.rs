//! Property tests for the SQL layer: expressions rendered with
//! `Expr::to_sql` must parse back to something that selects exactly the
//! same rows, and generated queries must round-trip through `Query::to_sql`
//! where the surface syntax supports them.

use memdb::{parse_query, ColumnDef, DataType, Expr, Schema, Table, Value};
use proptest::prelude::*;

/// Random predicate AST over columns d (string, values "a"/"b"/"c"),
/// n (int), and m (float).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        proptest::sample::select(vec!["a", "b", "c", "zz"]).prop_map(|v| Expr::col("d").eq(v)),
        (-5i64..5).prop_map(|v| Expr::col("n").gt(v)),
        (-5i64..5).prop_map(|v| Expr::col("n").le(v)),
        (-10.0f64..10.0).prop_map(|v| Expr::col("m").lt(v)),
        Just(Expr::col("d").is_null()),
        proptest::collection::vec(proptest::sample::select(vec!["a", "b", "c"]), 1..3)
            .prop_map(|vs| Expr::col("d").in_list(vs.into_iter().map(Value::from).collect())),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| e.not()),
        ]
    })
}

fn table() -> Table {
    let schema = Schema::new(vec![
        ColumnDef::dimension("d", DataType::Str),
        ColumnDef::dimension("n", DataType::Int64),
        ColumnDef::measure("m", DataType::Float64),
    ])
    .unwrap();
    let mut t = Table::new("t", schema);
    let ds = ["a", "b", "c"];
    for i in 0..60i64 {
        let d = if i % 7 == 0 {
            Value::Null
        } else {
            Value::from(ds[(i % 3) as usize])
        };
        t.push_row(vec![
            d,
            Value::Int(i % 8 - 4),
            Value::Float((i % 13) as f64 - 6.0),
        ])
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// to_sql -> parse -> evaluate selects the same rows as the original
    /// expression tree.
    #[test]
    fn expr_roundtrips_through_sql(expr in expr_strategy()) {
        let t = table();
        let direct = memdb::expr::selection_for(&t, Some(&expr)).unwrap();

        let sql = format!("SELECT COUNT(*) FROM t WHERE {}", expr.to_sql());
        let parsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("failed to parse {sql:?}: {e}"));
        let reparsed_filter = parsed.filter.expect("filter survives");
        let roundtrip = memdb::expr::selection_for(&t, Some(&reparsed_filter)).unwrap();

        prop_assert_eq!(direct, roundtrip, "sql was: {}", sql);
    }

    /// Parsing is total on rendered expressions (never panics, never
    /// errors) and idempotent: render(parse(render(e))) == render(parse(e)).
    #[test]
    fn render_parse_is_idempotent(expr in expr_strategy()) {
        let sql1 = expr.to_sql();
        let q1 = parse_query(&format!("SELECT COUNT(*) FROM t WHERE {sql1}")).unwrap();
        let sql2 = q1.filter.as_ref().unwrap().to_sql();
        let q2 = parse_query(&format!("SELECT COUNT(*) FROM t WHERE {sql2}")).unwrap();
        prop_assert_eq!(sql2, q2.filter.unwrap().to_sql());
    }
}

#[test]
fn executed_sql_matches_programmatic_query() {
    let t = table();
    let db = memdb::Database::new();
    db.register(t);
    let from_sql = db
        .run_sql("SELECT d, SUM(m) AS s, COUNT(*) AS c FROM t WHERE n >= 0 GROUP BY d")
        .unwrap();
    let q = memdb::Query::aggregate(
        "t",
        vec!["d"],
        vec![
            memdb::AggSpec::new(memdb::AggFunc::Sum, "m").with_alias("s"),
            memdb::AggSpec::count_star().with_alias("c"),
        ],
    )
    .with_filter(Expr::col("n").ge(0));
    let programmatic = db.run(&q).unwrap();
    assert_eq!(from_sql.result, programmatic.result);
}
