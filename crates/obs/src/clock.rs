//! The single wall-clock shim of the observability subsystem.
//!
//! Every timestamp recorded anywhere in `seedb-obs` — span start/end
//! pairs, latency histogram samples — flows through the [`Clock`]
//! trait. Production code uses [`MonotonicClock`]; deterministic
//! harnesses inject [`ManualClock`] and advance it by hand, which is
//! how the soak driver keeps `obs-report.json` byte-identical for a
//! given seed. This file is the **only** place in the crate allowed to
//! name the std wall-clock types; the `no-wallclock-in-plan` rule in
//! `seedb-lint` enforces that split.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must never go
/// backwards between two calls on the same clock value.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since an arbitrary per-clock origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic nanoseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A monotonic span of ~584 years fits u64 nanoseconds; the
        // origin is process start, so the cast cannot truncate.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-driven clock for deterministic tests and the soak harness:
/// time only moves when the owner says so, and only forward.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ns.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Move the clock to `ns` if that is later than the current time
    /// (monotone: an earlier value is ignored, never applied).
    pub fn set_ns(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Advance the clock by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.now_ns.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_monotone_and_explicit() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.set_ns(50);
        assert_eq!(c.now_ns(), 50);
        c.set_ns(20); // earlier: ignored
        assert_eq!(c.now_ns(), 50);
        c.advance_ns(25);
        assert_eq!(c.now_ns(), 75);
    }
}
