//! # seedb-obs — end-to-end observability for the SeeDB workspace
//!
//! A std-only observability subsystem shared by every layer
//! (serve → execute → store):
//!
//! * a **metrics registry** ([`registry`]) — lock-free atomic counters
//!   and gauges plus fixed-boundary log₂-bucket latency histograms,
//!   registered under dotted names (`service.cache.hits`,
//!   `exec.rows_scanned`, `store.wal.fsyncs`) and snapshot-able into
//!   deterministic sorted JSON;
//! * a **per-request trace recorder** ([`trace`]) — ring-buffered span
//!   trees with start/duration/attributes, zero-cost when disabled;
//! * a **clock shim** ([`clock`]) — all timing flows through the
//!   [`Clock`] trait, so production uses a monotonic clock while the
//!   soak harness injects its virtual clock and gets byte-identical
//!   telemetry per seed.
//!
//! The [`Obs`] bundle ties the three together; `memdb::Database` roots
//! one per instance and the serving layer adopts it, so every number
//! has exactly one cell (`CacheStats` and `CostCounters` are thin
//! views over registry counters, never divergent copies).
//!
//! ```
//! use seedb_obs::Obs;
//!
//! let obs = Obs::default();
//! let hits = obs.registry().register_counter("service.cache.hits");
//! hits.inc();
//! obs.tracer().set_enabled(true);
//! let root = obs.tracer().root_span("recommend");
//! drop(root.child("execute"));
//! drop(root);
//! assert!(obs.registry().snapshot().to_json().contains("service.cache.hits"));
//! assert_eq!(obs.tracer().last().unwrap().spans.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod clock;
pub mod registry;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

use std::sync::Arc;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use registry::{
    is_valid_name, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use timeseries::{Sampler, SamplerConfig, Window};
pub use trace::{format_ns, Span, SpanRecord, TraceData, Tracer};
pub use watchdog::{Breach, FlightRecorder, HealthStatus, Rule, RuleKind, Watchdog};

/// Finished traces kept per tracer ring (recent requests only — this
/// is a debugging window, not a log).
pub const TRACE_RING_CAPACITY: usize = 32;

/// The observability bundle one database instance (and everything
/// serving from it) shares: a clock, a metrics registry, and a trace
/// recorder, all behind `Arc`s so clones are cheap handles onto the
/// same state.
#[derive(Debug, Clone)]
pub struct Obs {
    clock: Arc<dyn Clock>,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
}

impl Obs {
    /// An `Obs` whose timing flows through `clock` (the soak harness
    /// passes its [`ManualClock`] here).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Obs {
        let tracer = Arc::new(Tracer::new(clock.clone(), TRACE_RING_CAPACITY));
        Obs {
            clock,
            registry: Arc::new(Registry::new()),
            tracer,
        }
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time per the injected clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A [`Sampler`] over this bundle's registry, timed by its clock —
    /// the telemetry time-series entry point.
    pub fn sampler(&self, config: SamplerConfig) -> Sampler {
        Sampler::new(self.clock.clone(), self.registry.clone(), config)
    }
}

impl Default for Obs {
    /// Production defaults: monotonic clock, empty registry, disabled
    /// tracer.
    fn default() -> Self {
        Obs::with_clock(Arc::new(MonotonicClock::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let obs = Obs::default();
        let other = obs.clone();
        obs.registry().register_counter("a.b").add(5);
        assert_eq!(other.registry().register_counter("a.b").get(), 5);
        other.tracer().set_enabled(true);
        assert!(obs.tracer().is_enabled());
    }

    #[test]
    fn manual_clock_flows_through() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        clock.set_ns(42);
        assert_eq!(obs.now_ns(), 42);
    }
}
