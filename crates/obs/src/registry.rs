//! The metrics registry: named counters, gauges, and log₂-bucket
//! latency histograms, snapshot-able into deterministic sorted JSON.
//!
//! Instruments live behind `Arc`ed atomics: registering the same name
//! twice returns handles over the **same** cell, which is what lets
//! legacy snapshot structs (`CacheStats`, `CostCounters`) stay thin
//! views over registry-backed counters — one number, one cell, never
//! two divergent copies. Updates are lock-free (`fetch_add` on relaxed
//! atomics); the registry mutex is touched only at registration and
//! snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Histogram bucket count: value 0, then one bucket per power of two
/// up to `u64::MAX` (bucket `i ≥ 1` spans `[2^(i-1), 2^i - 1]`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Recover a poisoned guard: instruments hold plain integers, so a
/// panicking holder cannot leave them in a torn state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is `name` a valid dotted metric name (`^[a-z0-9_.]+$`, non-empty)?
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.')
}

/// A monotonically increasing counter handle (cheap to clone; clones
/// share the cell).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by 1.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Reset to zero (legacy `reset`-style surfaces only).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared histogram storage: fixed log₂ buckets plus count and sum.
#[derive(Debug)]
struct Histo {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `v`: 0 holds exactly the value 0; bucket `i ≥ 1`
/// spans `[2^(i-1), 2^i - 1]`; `u64::MAX` lands in bucket 64.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (what percentile queries report).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-boundary log₂-bucket latency histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    histo: Arc<Histo>,
}

impl Histogram {
    /// Record one sample (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.histo.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.histo.count.fetch_add(1, Ordering::Relaxed);
        self.histo.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.histo.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .histo
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.histo.count.load(Ordering::Relaxed),
            sum: self.histo.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (`q` in `[0, 1]`), reported as the upper
    /// bound of the bucket the rank falls in — deterministic, and exact
    /// to within one power of two. Zero samples report 0.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The metrics registry: dotted names to instruments.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name`. Re-registering a name hands
    /// back a handle over the same cell. Names must match
    /// `^[a-z0-9_.]+$` (debug-asserted; the `metrics-naming` lint holds
    /// call sites to it statically).
    pub fn register_counter(&self, name: &str) -> Counter {
        debug_assert!(is_valid_name(name), "bad metric name {name:?}");
        let mut map = lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => {
                debug_assert!(false, "{name:?} already registered with another kind");
                Counter::default()
            }
        }
    }

    /// Get-or-create the gauge `name` (same contract as
    /// [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str) -> Gauge {
        debug_assert!(is_valid_name(name), "bad metric name {name:?}");
        let mut map = lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => {
                debug_assert!(false, "{name:?} already registered with another kind");
                Gauge::default()
            }
        }
    }

    /// Get-or-create the histogram `name` (same contract as
    /// [`Registry::register_counter`]).
    pub fn register_histogram(&self, name: &str) -> Histogram {
        debug_assert!(is_valid_name(name), "bad metric name {name:?}");
        let mut map = lock(&self.inner);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::default()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => {
                debug_assert!(false, "{name:?} already registered with another kind");
                Histogram::default()
            }
        }
    }

    /// Snapshot every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = lock(&self.inner);
        let mut snap = MetricsSnapshot::default();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Deterministic JSON: object with sorted keys at every level;
    /// histograms carry count/sum plus derived p50/p90/p99. Two equal
    /// snapshots render byte-identically.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("    {k:?}: {v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("    {k:?}: {v}"))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "    {k:?}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                     \"sum\": {}}}",
                    h.count,
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.sum
                )
            })
            .collect();
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }}\n}}\n",
            counters.join(",\n"),
            gauges.join(",\n"),
            histograms.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(is_valid_name("service.cache.hits"));
        assert!(is_valid_name("a_b.c_1"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("Upper.case"));
        assert!(!is_valid_name("has space"));
        assert!(!is_valid_name("dash-ed"));
    }

    #[test]
    fn reregistering_shares_the_cell() {
        let r = Registry::new();
        let a = r.register_counter("x.hits");
        let b = r.register_counter("x.hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Value → bucket index, across every boundary class the issue
        // names: 0, 1, powers of two, off-by-one neighbors, u64::MAX.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX / 2), 63);
        assert_eq!(bucket_index(u64::MAX / 2 + 1), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Upper bounds bracket their bucket.
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 33, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} over bucket {i} upper");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} under bucket {i} lower");
            }
        }
    }

    #[test]
    fn histogram_percentiles_from_buckets() {
        let r = Registry::new();
        let h = r.register_histogram("lat_ns");
        for v in [0u64, 1, 1, 100, 100, 100, 100, 100, 100, 4000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 4602);
        // rank 5 of 10 lands in the [64,127] bucket holding the 100s.
        assert_eq!(s.percentile(0.5), 127);
        assert_eq!(s.percentile(0.9), 127);
        assert_eq!(s.percentile(0.99), 4095);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: vec![]
            }
            .percentile(0.5),
            0
        );
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let r = Registry::new();
        let c = r.register_counter("stress.count");
        let h = r.register_histogram("stress.lat");
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshot_json_is_sorted_and_parses() {
        let r = Registry::new();
        r.register_counter("z.last").add(2);
        r.register_counter("a.first").inc();
        r.register_gauge("m.level").set(7);
        r.register_histogram("q.lat").record(100);
        let json = r.snapshot().to_json();
        let a = json.find("\"a.first\"").expect("a.first present");
        let z = json.find("\"z.last\"").expect("z.last present");
        assert!(a < z, "counters sorted");
        assert!(json.contains("\"m.level\": 7"));
        assert!(json.contains("\"count\": 1"));
        // Deterministic: same registry, same bytes.
        assert_eq!(json, r.snapshot().to_json());
    }
}
