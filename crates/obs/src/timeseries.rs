//! Telemetry time-series: windowed sampling over the metrics registry.
//!
//! A [`Sampler`] snapshots a [`Registry`] on the injected [`Clock`] at a
//! configurable interval and keeps a bounded ring of [`Window`]s. Each
//! window carries *deltas*, not totals: counter diffs, gauge last
//! values, and histogram bucket diffs (so windowed p50/p99 come from
//! exactly the samples recorded inside the window). Because both the
//! clock and the registry are injectable, the soak harness replays a
//! seed and gets a byte-identical time-series export — the property the
//! watchdog's flight-recorder dumps inherit.
//!
//! Sampling is pull-based: there is no thread. Callers either drive
//! [`Sampler::sample_now`] explicitly (the demo CLI's `:watch`) or call
//! the cheap [`Sampler::maybe_tick`] from a hot path — one relaxed
//! atomic load deciding whether the interval elapsed.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::clock::Clock;
use crate::registry::{HistogramSnapshot, MetricsSnapshot, Registry};

/// Recover a poisoned guard (the state is plain data; a panicking
/// holder cannot tear it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sampler knobs: how often to cut a window and how many to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Minimum nanoseconds between automatic samples
    /// ([`Sampler::maybe_tick`]); explicit [`Sampler::sample_now`] calls
    /// ignore it. Zero samples on every tick.
    pub interval_ns: u64,
    /// Windows retained in the ring (oldest evicted first).
    pub capacity: usize,
}

impl SamplerConfig {
    /// Production defaults: one-second windows, 64 retained.
    pub fn recommended() -> Self {
        SamplerConfig {
            interval_ns: 1_000_000_000,
            capacity: 64,
        }
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::recommended()
    }
}

/// One sampled window: per-instrument deltas between two registry
/// snapshots, stamped with the clock values that bracket them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Window {
    /// Clock value when the previous sample was taken.
    pub start_ns: u64,
    /// Clock value when this sample was taken.
    pub end_ns: u64,
    /// Counter deltas over the window (every registered counter).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at window end (gauges are last-value-wins).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram bucket diffs: exactly the samples recorded inside the
    /// window, so percentiles are windowed, not cumulative.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Window {
    /// Window length (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Counter delta for `name` (0 if unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at window end (0 if unregistered).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter rate: events per second of window time (0 for an empty
    /// or zero-length window).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        self.counter(name) as f64 * 1e9 / d as f64
    }

    /// Windowed nearest-rank percentile of histogram `name` (0 if the
    /// histogram is unregistered or recorded nothing this window).
    pub fn percentile(&self, name: &str, q: f64) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.percentile(q))
    }

    /// `a / (a + b)` over two counter deltas — `None` when neither
    /// moved (callers decide how an idle window reads).
    pub fn ratio(&self, a: &str, b: &str) -> Option<f64> {
        let (a, b) = (self.counter(a), self.counter(b));
        let total = a + b;
        if total == 0 {
            None
        } else {
            Some(a as f64 / total as f64)
        }
    }

    /// Deterministic single-line JSON: alphabetical keys at every
    /// level. Two equal windows render byte-identically.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{k:?}: {v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{k:?}: {v}"))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "{k:?}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"sum\": {}}}",
                    h.count,
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.sum
                )
            })
            .collect();
        format!(
            "{{\"counters\": {{{}}}, \"end_ns\": {}, \"gauges\": {{{}}}, \
             \"histograms\": {{{}}}, \"start_ns\": {}}}",
            counters.join(", "),
            self.end_ns,
            gauges.join(", "),
            histograms.join(", "),
            self.start_ns,
        )
    }
}

/// Mutable sampler state behind one mutex: the previous snapshot the
/// next window diffs against, and the ring of finished windows.
#[derive(Debug)]
struct SamplerState {
    last: MetricsSnapshot,
    last_ns: u64,
    windows: VecDeque<Window>,
}

/// The registry sampler: cuts [`Window`]s of per-instrument deltas on
/// the injected clock and keeps the most recent `capacity` of them.
#[derive(Debug)]
pub struct Sampler {
    clock: Arc<dyn Clock>,
    registry: Arc<Registry>,
    interval_ns: u64,
    capacity: usize,
    /// Next clock value at which [`Sampler::maybe_tick`] fires — the
    /// only thing the hot path reads.
    next_due_ns: AtomicU64,
    state: Mutex<SamplerState>,
}

impl Sampler {
    /// A sampler over `registry`, timed by `clock`, with the baseline
    /// snapshot taken now (the first window's deltas start here).
    pub fn new(clock: Arc<dyn Clock>, registry: Arc<Registry>, config: SamplerConfig) -> Sampler {
        let now = clock.now_ns();
        let last = registry.snapshot();
        Sampler {
            clock,
            registry,
            interval_ns: config.interval_ns,
            capacity: config.capacity.max(1),
            next_due_ns: AtomicU64::new(now.saturating_add(config.interval_ns)),
            state: Mutex::new(SamplerState {
                last,
                last_ns: now,
                windows: VecDeque::new(),
            }),
        }
    }

    /// The configured sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Cut a window now if the interval has elapsed; the fast path is
    /// one atomic load and a compare.
    pub fn maybe_tick(&self) -> Option<Window> {
        if self.clock.now_ns() < self.next_due_ns.load(Ordering::Relaxed) {
            return None;
        }
        Some(self.sample_now())
    }

    /// Cut a window now regardless of the interval: snapshot the
    /// registry, diff against the previous snapshot, push the window
    /// into the ring (evicting the oldest past capacity), and return it.
    pub fn sample_now(&self) -> Window {
        let mut state = lock(&self.state);
        let now = self.clock.now_ns().max(state.last_ns);
        let snap = self.registry.snapshot();
        let window = diff_window(&state.last, &snap, state.last_ns, now);
        state.last = snap;
        state.last_ns = now;
        if state.windows.len() >= self.capacity {
            state.windows.pop_front();
        }
        state.windows.push_back(window.clone());
        self.next_due_ns
            .store(now.saturating_add(self.interval_ns), Ordering::Relaxed);
        window
    }

    /// All retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        lock(&self.state).windows.iter().cloned().collect()
    }

    /// The most recently cut window.
    pub fn latest(&self) -> Option<Window> {
        lock(&self.state).windows.back().cloned()
    }

    /// Retained window count.
    pub fn len(&self) -> usize {
        lock(&self.state).windows.len()
    }

    /// True when no window has been cut yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic export: interval plus every retained window,
    /// oldest first. Same clock script over the same registry ⇒
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let state = lock(&self.state);
        let windows: Vec<String> = state
            .windows
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        format!(
            "{{\n  \"interval_ns\": {},\n  \"windows\": [\n{}\n  ]\n}}\n",
            self.interval_ns,
            windows.join(",\n"),
        )
    }
}

/// Diff two registry snapshots into a window. Counters and histogram
/// buckets subtract (saturating, so a restarted incarnation's fresh
/// registry reads as zeros, never underflow); gauges carry the new
/// value.
fn diff_window(old: &MetricsSnapshot, new: &MetricsSnapshot, start_ns: u64, end_ns: u64) -> Window {
    let counters = new
        .counters
        .iter()
        .map(|(k, &v)| {
            let prev = old.counters.get(k).copied().unwrap_or(0);
            (k.clone(), v.saturating_sub(prev))
        })
        .collect();
    let gauges = new.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect();
    let histograms = new
        .histograms
        .iter()
        .map(|(k, h)| {
            let diffed = match old.histograms.get(k) {
                Some(prev) => HistogramSnapshot {
                    count: h.count.saturating_sub(prev.count),
                    sum: h.sum.saturating_sub(prev.sum),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
                        .collect(),
                },
                None => h.clone(),
            };
            (k.clone(), diffed)
        })
        .collect();
    Window {
        start_ns,
        end_ns,
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn sampler(interval_ns: u64, capacity: usize) -> (Arc<ManualClock>, Arc<Registry>, Sampler) {
        let clock = Arc::new(ManualClock::new());
        let registry = Arc::new(Registry::new());
        let s = Sampler::new(
            clock.clone(),
            registry.clone(),
            SamplerConfig {
                interval_ns,
                capacity,
            },
        );
        (clock, registry, s)
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let (clock, registry, s) = sampler(100, 8);
        let c = registry.register_counter("t.hits");
        let g = registry.register_gauge("t.pending");
        let h = registry.register_histogram("t.lat_ns");
        c.add(5);
        g.set(70);
        h.record(100);
        h.record(100);
        clock.set_ns(100);
        let w1 = s.sample_now();
        assert_eq!((w1.start_ns, w1.end_ns), (0, 100));
        assert_eq!(w1.counter("t.hits"), 5);
        assert_eq!(w1.gauge("t.pending"), 70);
        assert_eq!(w1.histograms["t.lat_ns"].count, 2);
        assert_eq!(w1.percentile("t.lat_ns", 0.5), 127);

        c.add(3);
        g.set(40);
        h.record(4000);
        clock.set_ns(200);
        let w2 = s.sample_now();
        assert_eq!(w2.counter("t.hits"), 3, "delta, not running total");
        assert_eq!(w2.gauge("t.pending"), 40, "gauges carry the last value");
        assert_eq!(w2.histograms["t.lat_ns"].count, 1);
        assert_eq!(
            w2.percentile("t.lat_ns", 0.5),
            4095,
            "windowed percentile sees only this window's sample"
        );
        assert_eq!(s.windows().len(), 2);
    }

    #[test]
    fn rates_and_ratios() {
        let (clock, registry, s) = sampler(0, 4);
        let hits = registry.register_counter("t.hits");
        let misses = registry.register_counter("t.misses");
        hits.add(30);
        misses.add(10);
        clock.set_ns(2_000_000_000);
        let w = s.sample_now();
        assert!((w.rate_per_sec("t.hits") - 15.0).abs() < 1e-9);
        assert_eq!(w.ratio("t.hits", "t.misses"), Some(0.75));
        assert_eq!(w.ratio("t.none", "t.nada"), None);
        let idle = s.sample_now();
        assert_eq!(idle.rate_per_sec("t.hits"), 0.0, "zero-length window");
    }

    #[test]
    fn maybe_tick_respects_the_interval() {
        let (clock, registry, s) = sampler(100, 4);
        registry.register_counter("t.c").inc();
        clock.set_ns(99);
        assert!(s.maybe_tick().is_none(), "interval not yet elapsed");
        clock.set_ns(100);
        assert!(s.maybe_tick().is_some());
        assert!(s.maybe_tick().is_none(), "rearmed at now + interval");
        clock.set_ns(200);
        assert!(s.maybe_tick().is_some());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ring_is_bounded() {
        let (clock, registry, s) = sampler(0, 2);
        let c = registry.register_counter("t.c");
        for i in 1..=4u64 {
            c.inc();
            clock.set_ns(i * 10);
            s.sample_now();
        }
        let windows = s.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].end_ns, 30, "oldest evicted first");
        assert_eq!(windows[1].end_ns, 40);
        assert_eq!(s.latest().map(|w| w.end_ns), Some(40));
    }

    #[test]
    fn fresh_registry_after_restart_reads_as_zero_not_underflow() {
        // The soak banks per-incarnation registries; a window diffed
        // against a larger previous snapshot must saturate at zero.
        let old = MetricsSnapshot {
            counters: [("t.c".to_string(), 100)].into_iter().collect(),
            ..MetricsSnapshot::default()
        };
        let new = MetricsSnapshot {
            counters: [("t.c".to_string(), 3)].into_iter().collect(),
            ..MetricsSnapshot::default()
        };
        let w = diff_window(&old, &new, 0, 1);
        assert_eq!(w.counter("t.c"), 0);
    }

    #[test]
    fn export_is_deterministic_for_the_same_clock_script() {
        let run = || {
            let (clock, registry, s) = sampler(50, 8);
            let c = registry.register_counter("t.hits");
            let h = registry.register_histogram("t.lat_ns");
            let g = registry.register_gauge("t.pending");
            for step in 1..=5u64 {
                c.add(step);
                h.record(step * 100);
                g.set(step * 7);
                clock.set_ns(step * 50);
                s.sample_now();
            }
            s.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same clock script ⇒ byte-identical export");
        assert!(a.contains("\"interval_ns\": 50"));
        assert!(a.contains("\"t.hits\""));
    }

    #[test]
    fn window_json_has_sorted_keys_and_parses() {
        let (clock, registry, s) = sampler(0, 4);
        registry.register_counter("z.last").inc();
        registry.register_counter("a.first").inc();
        registry.register_gauge("m.level").set(9);
        registry.register_histogram("q.lat").record(3);
        clock.set_ns(10);
        let json = s.sample_now().to_json();
        let a = json.find("\"a.first\"").expect("a.first present");
        let z = json.find("\"z.last\"").expect("z.last present");
        assert!(a < z, "counters sorted");
        assert!(json.contains("\"m.level\": 9"));
        assert!(json.contains("\"start_ns\": 0"));
        assert!(json.contains("\"end_ns\": 10"));
    }
}
