//! Per-request trace recording: ring-buffered span trees.
//!
//! A [`Tracer`] hands out a root [`Span`] per request when enabled;
//! instrumented layers open child spans (`optimize`, `cache probe`,
//! per-partition `execute_partial`, …) and attach attributes. Dropping
//! a span stamps its end time; dropping the **root** assembles the
//! finished [`TraceData`] and pushes it into a bounded ring the caller
//! reads back (`Session::last_trace()` in the serving layer).
//!
//! When tracing is disabled the root span is [`Span::none`] and every
//! operation on it — children, attributes, drop — is a branch on a
//! `None`, so instrumented code pays no allocation and no lock.
//! Timing flows through the injected [`Clock`], never the wall clock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::clock::Clock;

/// Recover a poisoned guard (span vectors hold plain records; a
/// panicking holder cannot tear them).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One recorded span: flat representation with a parent index, so
/// worker threads can record siblings concurrently under one mutex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`recommend`, `execute_partial`, …).
    pub name: String,
    /// Index of the parent span in the trace, `None` for the root.
    pub parent: Option<usize>,
    /// Start timestamp ([`Clock::now_ns`]).
    pub start_ns: u64,
    /// End timestamp (0 until the span drops; equal starts are legal
    /// under a manual clock).
    pub end_ns: u64,
    /// Attribute key/value pairs, in attach order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration (saturating: an unfinished span reads as 0).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The value of attribute `key`, if attached.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A finished span tree, flat records with parent indices (index 0 is
/// the root).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// All spans of the request, in record order.
    pub spans: Vec<SpanRecord>,
}

impl TraceData {
    /// The root span, if the trace is non-empty.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.first()
    }

    /// The root's attribute `key`, if attached.
    pub fn root_attr(&self, key: &str) -> Option<&str> {
        self.root().and_then(|r| r.attr(key))
    }

    /// Render the tree: one line per span, indented by depth, with
    /// duration and attributes. Deterministic for a given trace.
    pub fn render(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                if let Some(list) = children.get_mut(p) {
                    list.push(i);
                }
            }
        }
        let mut out = String::new();
        if !self.spans.is_empty() {
            self.render_into(&mut out, &children, 0, 0);
        }
        out
    }

    fn render_into(&self, out: &mut String, children: &[Vec<usize>], i: usize, depth: usize) {
        let Some(s) = self.spans.get(i) else { return };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&s.name);
        out.push(' ');
        out.push_str(&format_ns(s.duration_ns()));
        for (k, v) in &s.attrs {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out.push('\n');
        if let Some(kids) = children.get(i) {
            for &c in kids {
                self.render_into(out, children, c, depth + 1);
            }
        }
    }
}

/// Human-readable duration (`897ns`, `12.3µs`, `4.56ms`, `1.23s`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Shared state of one in-flight trace.
#[derive(Debug)]
struct TraceInner {
    clock: Arc<dyn Clock>,
    ring: Arc<Mutex<VecDeque<TraceData>>>,
    capacity: usize,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A live span handle. Dropping it stamps the end time; dropping the
/// root publishes the whole trace to the tracer's ring. A [`Span::none`]
/// handle (tracing disabled) makes every operation a no-op. Handles are
/// `Send`, so partition workers can carry child spans across threads;
/// the root must outlive its children for their end times to be
/// recorded (lexically nested spans guarantee that).
#[derive(Debug, Default)]
pub struct Span {
    inner: Option<SpanHandle>,
}

#[derive(Debug)]
struct SpanHandle {
    trace: Arc<TraceInner>,
    index: usize,
}

impl Span {
    /// The disabled span: all operations no-op.
    pub fn none() -> Span {
        Span { inner: None }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a child span named `name`, started now.
    pub fn child(&self, name: &str) -> Span {
        let Some(h) = &self.inner else {
            return Span::none();
        };
        let start_ns = h.trace.clock.now_ns();
        let mut spans = lock(&h.trace.spans);
        let index = spans.len();
        spans.push(SpanRecord {
            name: name.to_string(),
            parent: Some(h.index),
            start_ns,
            end_ns: 0,
            attrs: Vec::new(),
        });
        Span {
            inner: Some(SpanHandle {
                trace: h.trace.clone(),
                index,
            }),
        }
    }

    /// Attach an attribute to this span.
    pub fn attr(&self, key: &str, value: impl std::fmt::Display) {
        let Some(h) = &self.inner else { return };
        let mut spans = lock(&h.trace.spans);
        if let Some(rec) = spans.get_mut(h.index) {
            rec.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(h) = self.inner.take() else { return };
        let end_ns = h.trace.clock.now_ns();
        let mut spans = lock(&h.trace.spans);
        if let Some(rec) = spans.get_mut(h.index) {
            rec.end_ns = end_ns;
        }
        if h.index == 0 {
            // Root: publish the finished trace into the bounded ring.
            let data = TraceData {
                spans: std::mem::take(&mut *spans),
            };
            drop(spans);
            let mut ring = lock(&h.trace.ring);
            if ring.len() >= h.trace.capacity {
                ring.pop_front();
            }
            ring.push_back(data);
        }
    }
}

/// The per-request trace recorder: hands out root spans when enabled
/// and keeps the last `capacity` finished traces in a ring.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    clock: Arc<dyn Clock>,
    ring: Arc<Mutex<VecDeque<TraceData>>>,
    capacity: usize,
}

impl Tracer {
    /// A disabled tracer keeping up to `capacity` finished traces.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            clock,
            ring: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Turn recording on or off (off also clears nothing — finished
    /// traces stay readable).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A root span named `name` — [`Span::none`] while disabled (the
    /// single branch the disabled path pays).
    pub fn root_span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span::none();
        }
        let inner = Arc::new(TraceInner {
            clock: self.clock.clone(),
            ring: self.ring.clone(),
            capacity: self.capacity,
            spans: Mutex::new(vec![SpanRecord {
                name: name.to_string(),
                parent: None,
                start_ns: self.clock.now_ns(),
                end_ns: 0,
                attrs: Vec::new(),
            }]),
        });
        Span {
            inner: Some(SpanHandle {
                trace: inner,
                index: 0,
            }),
        }
    }

    /// The most recently finished trace.
    pub fn last(&self) -> Option<TraceData> {
        lock(&self.ring).back().cloned()
    }

    /// The most recently finished trace whose root carries attribute
    /// `key` = `value` (how sessions find their own request back).
    pub fn last_with_root_attr(&self, key: &str, value: &str) -> Option<TraceData> {
        lock(&self.ring)
            .iter()
            .rev()
            .find(|t| t.root_attr(key) == Some(value))
            .cloned()
    }

    /// The most recent up-to-`n` finished traces, oldest first — what
    /// the flight recorder attaches to a dump.
    pub fn recent(&self, n: usize) -> Vec<TraceData> {
        let ring = lock(&self.ring);
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Drop every finished trace.
    pub fn clear(&self) {
        lock(&self.ring).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer(cap: usize) -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(clock.clone(), cap);
        tracer.set_enabled(true);
        (clock, tracer)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(clock, 4);
        let root = tracer.root_span("recommend");
        assert!(!root.is_recording());
        let child = root.child("execute");
        child.attr("k", "v");
        drop(child);
        drop(root);
        assert!(tracer.last().is_none());
    }

    #[test]
    fn span_tree_records_durations_and_attrs() {
        let (clock, tracer) = manual_tracer(4);
        {
            let root = tracer.root_span("recommend");
            root.attr("session", 7);
            clock.advance_ns(100);
            {
                let exec = root.child("execute");
                clock.advance_ns(50);
                let p0 = exec.child("execute_partial");
                p0.attr("partition", 0);
                clock.advance_ns(25);
                drop(p0);
                drop(exec);
            }
            clock.advance_ns(10);
        }
        let t = tracer.last().expect("trace recorded");
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.root().map(|r| r.name.as_str()), Some("recommend"));
        assert_eq!(t.root_attr("session"), Some("7"));
        assert_eq!(t.spans[0].duration_ns(), 185);
        assert_eq!(t.spans[1].name, "execute");
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[1].duration_ns(), 75);
        assert_eq!(t.spans[2].parent, Some(1));
        assert_eq!(t.spans[2].attr("partition"), Some("0"));
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("recommend 185ns session=7"));
        assert!(lines[1].starts_with("  execute "));
        assert!(lines[2].starts_with("    execute_partial "));
    }

    #[test]
    fn ring_is_bounded_and_newest_first_lookup_works() {
        let (_clock, tracer) = manual_tracer(2);
        for i in 0..3 {
            let root = tracer.root_span("r");
            root.attr("session", i);
            drop(root);
        }
        // Capacity 2: the i=0 trace was evicted.
        assert!(tracer.last_with_root_attr("session", "0").is_none());
        assert!(tracer.last_with_root_attr("session", "1").is_some());
        assert_eq!(
            tracer
                .last()
                .and_then(|t| t.root_attr("session").map(String::from)),
            Some("2".to_string())
        );
        tracer.clear();
        assert!(tracer.last().is_none());
    }

    #[test]
    fn recent_returns_oldest_first_and_caps_at_n() {
        let (_clock, tracer) = manual_tracer(4);
        for i in 0..3 {
            let root = tracer.root_span("r");
            root.attr("session", i);
            drop(root);
        }
        let all = tracer.recent(8);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].root_attr("session"), Some("0"));
        assert_eq!(all[2].root_attr("session"), Some("2"));
        let last_two = tracer.recent(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].root_attr("session"), Some("1"));
        assert!(tracer.recent(0).is_empty());
    }

    #[test]
    fn spans_record_across_threads() {
        let (_clock, tracer) = manual_tracer(4);
        let root = tracer.root_span("parallel");
        std::thread::scope(|s| {
            for i in 0..4 {
                let child = root.child("execute_partial");
                child.attr("partition", i);
                s.spawn(move || drop(child));
            }
        });
        drop(root);
        let t = tracer.last().expect("trace recorded");
        assert_eq!(t.spans.len(), 5);
        assert_eq!(
            t.spans
                .iter()
                .filter(|s| s.name == "execute_partial")
                .count(),
            4
        );
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(897), "897ns");
        assert_eq!(format_ns(12_300), "12.3µs");
        assert_eq!(format_ns(4_560_000), "4.56ms");
        assert_eq!(format_ns(1_230_000_000), "1.23s");
    }
}
