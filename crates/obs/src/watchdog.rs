//! Health watchdog: declarative rules over sampler windows, with
//! flight-recorder dumps on breach.
//!
//! A [`Watchdog`] holds a catalog of [`Rule`]s — each names the metric
//! it watches and the bound it enforces — and evaluates every new
//! [`Window`] the sampler cuts. A tripped rule yields a [`Breach`];
//! the serving layer feeds breaches to a [`FlightRecorder`], which
//! atomically writes a dump (the breach, the surrounding metric
//! windows, the last N trace spans, and the service config fingerprint)
//! using the store's tmp → fsync → rename idiom, so a half-written
//! dump is never visible.
//!
//! Everything is deterministic given deterministic inputs: windows are
//! diffs on the injected clock, dump filenames derive from the rule
//! name and window end, and dump JSON has sorted keys — the soak
//! harness replays a seed and gets byte-identical dumps.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::timeseries::Window;
use crate::trace::TraceData;

/// Breaches retained in the watchdog's in-memory log (oldest evicted
/// first) — a debugging window, like the trace ring.
pub const BREACH_LOG_CAPACITY: usize = 64;

/// Recover a poisoned guard (plain data; a panicking holder cannot
/// tear it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a rule watches and the bound it enforces, evaluated once per
/// sampler window.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Windowed p99 of `histogram` exceeds `bound_ns`.
    P99Above {
        /// Histogram metric name (e.g. `service.recommend_ns`).
        histogram: String,
        /// Inclusive p99 bound in nanoseconds.
        bound_ns: u64,
    },
    /// `hits / (hits + misses)` over the window falls below `floor`.
    /// Windows with fewer than `min_events` probes are skipped — a
    /// near-idle window proves nothing about the cache.
    HitRateBelow {
        /// Hit-counter metric name.
        hits: String,
        /// Miss-counter metric name.
        misses: String,
        /// Minimum acceptable hit rate in `[0, 1]`.
        floor: f64,
        /// Minimum probes per window for the rule to apply.
        min_events: u64,
    },
    /// Gauge `gauge` strictly grew for `windows` consecutive windows —
    /// the backlog-never-drains signal (WAL bytes pending checkpoint).
    MonotonicGrowth {
        /// Gauge metric name.
        gauge: String,
        /// Consecutive strictly-increasing windows that trip the rule.
        windows: usize,
    },
    /// Counter `counter` moved more than `max_per_window` inside one
    /// window — the spike signal (refresh fallbacks).
    CounterSpike {
        /// Counter metric name.
        counter: String,
        /// Maximum acceptable delta per window.
        max_per_window: u64,
    },
}

/// One watchdog rule: a stable kebab-case name (used in breach logs and
/// dump filenames) plus the condition it enforces.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable identifier (`latency-p99`, `cache-hit-rate`, …); becomes
    /// part of the dump filename, so keep it path-safe.
    pub name: String,
    /// The condition.
    pub kind: RuleKind,
}

impl Rule {
    /// A named rule.
    pub fn new(name: impl Into<String>, kind: RuleKind) -> Rule {
        Rule {
            name: name.into(),
            kind,
        }
    }

    /// One-line human description for catalogs (`:health`, README).
    pub fn describe(&self) -> String {
        match &self.kind {
            RuleKind::P99Above {
                histogram,
                bound_ns,
            } => {
                format!("{}: window p99 of {histogram} > {bound_ns}ns", self.name)
            }
            RuleKind::HitRateBelow {
                hits,
                misses,
                floor,
                min_events,
            } => format!(
                "{}: {hits}/({hits}+{misses}) < {floor:.2} (min {min_events} events)",
                self.name
            ),
            RuleKind::MonotonicGrowth { gauge, windows } => {
                format!("{}: {gauge} grew {windows} consecutive windows", self.name)
            }
            RuleKind::CounterSpike {
                counter,
                max_per_window,
            } => format!("{}: {counter} > {max_per_window} in one window", self.name),
        }
    }
}

/// One tripped rule, stamped with the window that tripped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    /// The tripped rule's name.
    pub rule: String,
    /// Human-readable detail: observed value vs bound.
    pub detail: String,
    /// Start of the breaching window.
    pub window_start_ns: u64,
    /// End of the breaching window.
    pub window_end_ns: u64,
}

impl Breach {
    /// Deterministic single-line JSON with alphabetical keys.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"detail\": {:?}, \"rule\": {:?}, \"window_end_ns\": {}, \
             \"window_start_ns\": {}}}",
            self.detail, self.rule, self.window_end_ns, self.window_start_ns,
        )
    }
}

impl std::fmt::Display for Breach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} (window {}..{}ns)",
            self.rule, self.detail, self.window_start_ns, self.window_end_ns
        )
    }
}

/// Point-in-time watchdog verdict, surfaced by `Service::health()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthStatus {
    /// True while no rule has ever tripped.
    pub healthy: bool,
    /// Windows evaluated so far.
    pub windows_evaluated: u64,
    /// The retained breach log, oldest first.
    pub breaches: Vec<Breach>,
}

impl HealthStatus {
    /// Human-readable multi-line rendering (the `:health` command).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({} window(s) evaluated, {} breach(es))\n",
            if self.healthy { "HEALTHY" } else { "DEGRADED" },
            self.windows_evaluated,
            self.breaches.len()
        );
        for b in &self.breaches {
            out.push_str("  ");
            out.push_str(&b.to_string());
            out.push('\n');
        }
        out
    }
}

/// Per-gauge growth tracking for [`RuleKind::MonotonicGrowth`].
#[derive(Debug, Default, Clone, Copy)]
struct GrowthStreak {
    last: u64,
    streak: usize,
    seen: bool,
}

/// Mutable watchdog state: growth streaks per rule index, the breach
/// log, and the evaluation counter.
#[derive(Debug, Default)]
struct WatchdogState {
    growth: Vec<GrowthStreak>,
    breaches: Vec<Breach>,
    windows_evaluated: u64,
    total_breaches: u64,
}

/// The watchdog: a rule catalog evaluated window by window.
#[derive(Debug)]
pub struct Watchdog {
    rules: Vec<Rule>,
    state: Mutex<WatchdogState>,
}

impl Watchdog {
    /// A watchdog over `rules`.
    pub fn new(rules: Vec<Rule>) -> Watchdog {
        let growth = vec![GrowthStreak::default(); rules.len()];
        Watchdog {
            rules,
            state: Mutex::new(WatchdogState {
                growth,
                ..WatchdogState::default()
            }),
        }
    }

    /// The rule catalog.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate one window against every rule. Breaches are returned
    /// *and* appended to the retained log.
    pub fn evaluate(&self, window: &Window) -> Vec<Breach> {
        let mut state = lock(&self.state);
        state.windows_evaluated += 1;
        let mut tripped = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let detail = match &rule.kind {
                RuleKind::P99Above {
                    histogram,
                    bound_ns,
                } => {
                    let p99 = window.percentile(histogram, 0.99);
                    (p99 > *bound_ns)
                        .then(|| format!("{histogram} window p99 {p99}ns > bound {bound_ns}ns"))
                }
                RuleKind::HitRateBelow {
                    hits,
                    misses,
                    floor,
                    min_events,
                } => {
                    let events = window.counter(hits) + window.counter(misses);
                    if events < *min_events {
                        None
                    } else {
                        window.ratio(hits, misses).and_then(|rate| {
                            (rate < *floor).then(|| {
                                format!(
                                    "hit rate {rate:.3} < floor {floor:.3} \
                                     ({events} probes in window)"
                                )
                            })
                        })
                    }
                }
                RuleKind::MonotonicGrowth { gauge, windows } => {
                    let v = window.gauge(gauge);
                    let g = state.growth.get_mut(i);
                    match g {
                        Some(g) => {
                            if g.seen && v > g.last {
                                g.streak += 1;
                            } else {
                                g.streak = 0;
                            }
                            g.last = v;
                            g.seen = true;
                            if g.streak >= *windows {
                                let detail = format!(
                                    "{gauge} grew {} consecutive window(s) to {v}",
                                    g.streak
                                );
                                g.streak = 0; // re-arm: one breach per run-up
                                Some(detail)
                            } else {
                                None
                            }
                        }
                        None => None,
                    }
                }
                RuleKind::CounterSpike {
                    counter,
                    max_per_window,
                } => {
                    let delta = window.counter(counter);
                    (delta > *max_per_window).then(|| {
                        format!("{counter} moved {delta} in one window (max {max_per_window})")
                    })
                }
            };
            if let Some(detail) = detail {
                tripped.push(Breach {
                    rule: rule.name.clone(),
                    detail,
                    window_start_ns: window.start_ns,
                    window_end_ns: window.end_ns,
                });
            }
        }
        for b in &tripped {
            state.total_breaches += 1;
            if state.breaches.len() >= BREACH_LOG_CAPACITY {
                state.breaches.remove(0);
            }
            state.breaches.push(b.clone());
        }
        tripped
    }

    /// The current verdict: healthy iff no rule has ever tripped.
    pub fn status(&self) -> HealthStatus {
        let state = lock(&self.state);
        HealthStatus {
            healthy: state.total_breaches == 0,
            windows_evaluated: state.windows_evaluated,
            breaches: state.breaches.clone(),
        }
    }
}

/// Writes flight-recorder dumps: one atomically-published JSON file per
/// breach, named `dump-<rule>-<window_end_ns>.json` so the same breach
/// in a replayed run lands on the same path with the same bytes.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
}

impl FlightRecorder {
    /// A recorder writing into `dir` (created on first dump).
    pub fn new(dir: impl Into<PathBuf>) -> FlightRecorder {
        FlightRecorder { dir: dir.into() }
    }

    /// The dump directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Render one dump: the breach, the service config fingerprint, the
    /// most recent EXPLAIN ANALYZE report (if one ran), the last traces
    /// (rendered span trees), and the surrounding windows — sorted
    /// keys, deterministic for deterministic inputs.
    pub fn render_dump(
        breach: &Breach,
        windows: &[Window],
        traces: &[TraceData],
        config_fingerprint: &str,
        explain: Option<&str>,
    ) -> String {
        let windows: Vec<String> = windows
            .iter()
            .map(|w| format!("    {}", w.to_json()))
            .collect();
        let traces: Vec<String> = traces
            .iter()
            .map(|t| format!("    {:?}", t.render()))
            .collect();
        let explain = match explain {
            Some(e) => format!("{e:?}"),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"breach\": {},\n  \"config\": {:?},\n  \"explain\": {},\n  \
             \"traces\": [\n{}\n  ],\n  \"windows\": [\n{}\n  ]\n}}\n",
            breach.to_json(),
            config_fingerprint,
            explain,
            traces.join(",\n"),
            windows.join(",\n"),
        )
    }

    /// Write the dump for `breach` atomically (tmp → fsync → rename)
    /// and return its path. An existing dump for the same rule+window
    /// is overwritten (replays produce identical bytes anyway).
    pub fn record(
        &self,
        breach: &Breach,
        windows: &[Window],
        traces: &[TraceData],
        config_fingerprint: &str,
        explain: Option<&str>,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let name = format!("dump-{}-{}.json", breach.rule, breach.window_end_ns);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let body = Self::render_dump(breach, windows, traces, config_fingerprint, explain);
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::Registry;
    use crate::timeseries::{Sampler, SamplerConfig};
    use crate::trace::Tracer;
    use std::sync::Arc;

    fn harness() -> (Arc<ManualClock>, Arc<Registry>, Sampler) {
        let clock = Arc::new(ManualClock::new());
        let registry = Arc::new(Registry::new());
        let sampler = Sampler::new(
            clock.clone(),
            registry.clone(),
            SamplerConfig {
                interval_ns: 0,
                capacity: 16,
            },
        );
        (clock, registry, sampler)
    }

    #[test]
    fn p99_rule_trips_exactly_once_on_the_slow_window() {
        let (clock, registry, sampler) = harness();
        let wd = Watchdog::new(vec![Rule::new(
            "latency-p99",
            RuleKind::P99Above {
                histogram: "svc.lat_ns".into(),
                bound_ns: 1_000_000,
            },
        )]);
        let h = registry.register_histogram("svc.lat_ns");
        // Window 1: fast. Window 2: one 4ms outlier. Window 3: fast.
        let mut trips = 0;
        for (step, v) in [(1u64, 500u64), (2, 4_000_000), (3, 700)] {
            h.record(v);
            clock.set_ns(step * 100);
            let w = sampler.sample_now();
            trips += wd.evaluate(&w).len();
        }
        assert_eq!(trips, 1);
        let status = wd.status();
        assert!(!status.healthy);
        assert_eq!(status.windows_evaluated, 3);
        assert_eq!(status.breaches.len(), 1);
        assert_eq!(status.breaches[0].rule, "latency-p99");
        assert!(status.breaches[0].detail.contains("bound 1000000ns"));
    }

    #[test]
    fn hit_rate_rule_skips_idle_windows_and_trips_once() {
        let (clock, registry, sampler) = harness();
        let wd = Watchdog::new(vec![Rule::new(
            "cache-hit-rate",
            RuleKind::HitRateBelow {
                hits: "c.hits".into(),
                misses: "c.misses".into(),
                floor: 0.5,
                min_events: 10,
            },
        )]);
        let hits = registry.register_counter("c.hits");
        let misses = registry.register_counter("c.misses");
        // Window 1: 2 probes below floor but under min_events — skipped.
        misses.add(2);
        clock.set_ns(100);
        assert!(wd.evaluate(&sampler.sample_now()).is_empty());
        // Window 2: 20 probes, 25% hit rate — trips.
        hits.add(5);
        misses.add(15);
        clock.set_ns(200);
        let breaches = wd.evaluate(&sampler.sample_now());
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].detail.contains("hit rate 0.250"));
        // Window 3: healthy again.
        hits.add(20);
        clock.set_ns(300);
        assert!(wd.evaluate(&sampler.sample_now()).is_empty());
        assert_eq!(wd.status().breaches.len(), 1);
    }

    #[test]
    fn monotonic_growth_rule_needs_consecutive_windows() {
        let (clock, registry, sampler) = harness();
        let wd = Watchdog::new(vec![Rule::new(
            "wal-backlog",
            RuleKind::MonotonicGrowth {
                gauge: "wal.pending".into(),
                windows: 3,
            },
        )]);
        let g = registry.register_gauge("wal.pending");
        // Grows twice, drains, grows three times: trips exactly once.
        let script: [(u64, usize); 7] = [(10, 0), (20, 0), (5, 0), (6, 0), (7, 0), (8, 1), (9, 0)];
        for (step, (v, expect)) in script.iter().enumerate() {
            g.set(*v);
            clock.set_ns((step as u64 + 1) * 100);
            let got = wd.evaluate(&sampler.sample_now()).len();
            assert_eq!(got, *expect, "window {step} (gauge={v})");
        }
        assert_eq!(wd.status().breaches.len(), 1);
        assert!(wd.status().breaches[0].detail.contains("wal.pending"));
    }

    #[test]
    fn counter_spike_rule_trips_on_the_spiking_window_only() {
        let (clock, registry, sampler) = harness();
        let wd = Watchdog::new(vec![Rule::new(
            "fallback-spike",
            RuleKind::CounterSpike {
                counter: "c.fallbacks".into(),
                max_per_window: 2,
            },
        )]);
        let c = registry.register_counter("c.fallbacks");
        let mut trips = 0;
        for (step, add) in [(1u64, 1u64), (2, 5), (3, 2)] {
            c.add(add);
            clock.set_ns(step * 100);
            trips += wd.evaluate(&sampler.sample_now()).len();
        }
        assert_eq!(trips, 1);
        assert!(wd.status().breaches[0].detail.contains("moved 5"));
    }

    #[test]
    fn healthy_status_renders_and_rules_describe_themselves() {
        let wd = Watchdog::new(vec![Rule::new(
            "latency-p99",
            RuleKind::P99Above {
                histogram: "h".into(),
                bound_ns: 10,
            },
        )]);
        let status = wd.status();
        assert!(status.healthy);
        assert!(status.render().starts_with("HEALTHY"));
        assert!(wd.rules()[0].describe().contains("latency-p99"));
    }

    #[test]
    fn flight_recorder_dump_is_atomic_and_deterministic() {
        let (clock, registry, sampler) = harness();
        let tracer = Tracer::new(clock.clone(), 4);
        tracer.set_enabled(true);
        registry.register_counter("c.x").add(7);
        clock.set_ns(100);
        let w = sampler.sample_now();
        {
            let root = tracer.root_span("recommend");
            clock.advance_ns(5);
            drop(root.child("execute"));
        }
        let breach = Breach {
            rule: "latency-p99".into(),
            detail: "p99 over bound".into(),
            window_start_ns: 0,
            window_end_ns: 100,
        };
        let dir = std::env::temp_dir().join(format!("seedb-fr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(&dir);
        let traces = tracer.recent(8);
        let p1 = fr
            .record(&breach, std::slice::from_ref(&w), &traces, "cfg=1", None)
            .unwrap();
        let bytes1 = std::fs::read(&p1).unwrap();
        let p2 = fr
            .record(&breach, std::slice::from_ref(&w), &traces, "cfg=1", None)
            .unwrap();
        let bytes2 = std::fs::read(&p2).unwrap();
        assert_eq!(p1, p2, "same rule+window ⇒ same path");
        assert_eq!(
            p1.file_name().and_then(|n| n.to_str()),
            Some("dump-latency-p99-100.json")
        );
        assert_eq!(bytes1, bytes2, "replay ⇒ byte-identical dump");
        let text = String::from_utf8(bytes1).unwrap();
        assert!(text.contains("\"breach\""));
        assert!(text.contains("\"config\": \"cfg=1\""));
        assert!(text.contains("\"explain\": null"));
        assert!(FlightRecorder::render_dump(
            &breach,
            std::slice::from_ref(&w),
            &traces,
            "cfg=1",
            Some("plan")
        )
        .contains("\"explain\": \"plan\""));
        assert!(text.contains("recommend"));
        assert!(text.contains("\"c.x\": 7"));
        // No tmp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
