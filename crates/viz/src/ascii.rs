//! Terminal rendering of visualization specs.
//!
//! The demo's browser canvas is out of scope for a library, but the
//! examples and the experiment harness still need to *show* the
//! recommended views; this module renders a [`VisualizationSpec`] as a
//! paired horizontal bar chart (target ▐ vs comparison ░ per group),
//! which is enough to eyeball Figures 1–3 of the paper.

use crate::spec::VisualizationSpec;

/// Width (in characters) of the bar area.
pub const BAR_WIDTH: usize = 40;

/// Render a spec as a text chart.
///
/// Output shape:
///
/// ```text
/// SUM(amount) BY store   [bar_chart]  utility 0.731 (emd)
///   Cambridge, MA | ██████████████████████████▌ 0.34
///                 | ░░░░░ 0.03
///   ...
/// ```
pub fn render(spec: &VisualizationSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{}   [{}]  utility {:.4} ({})\n",
        spec.title,
        serde_json::to_value(spec.chart_type)
            .ok()
            .and_then(|v| v.as_str().map(str::to_string))
            .unwrap_or_default(),
        spec.metadata.utility,
        spec.metadata.metric,
    ));
    if spec.series.len() < 2 {
        out.push_str("  (no series)\n");
        return out;
    }
    let target = &spec.series[0];
    let comparison = &spec.series[1];
    let label_w = target
        .points
        .iter()
        .map(|p| p.label.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let max_p = target
        .points
        .iter()
        .chain(&comparison.points)
        .map(|p| p.probability)
        .fold(0.0f64, f64::max)
        .max(1e-12);

    for (t, c) in target.points.iter().zip(&comparison.points) {
        let t_len = ((t.probability / max_p) * BAR_WIDTH as f64).round() as usize;
        let c_len = ((c.probability / max_p) * BAR_WIDTH as f64).round() as usize;
        out.push_str(&format!(
            "  {:w$} | {} {:.3}  (raw {:.2})\n",
            t.label,
            "█".repeat(t_len),
            t.probability,
            t.raw,
            w = label_w
        ));
        out.push_str(&format!(
            "  {:w$} | {} {:.3}  (raw {:.2})\n",
            "",
            "░".repeat(c_len),
            c.probability,
            c.raw,
            w = label_w
        ));
    }
    if spec.truncated {
        out.push_str(&format!(
            "  … truncated to the top {} of {} groups\n",
            target.points.len(),
            spec.metadata.num_groups
        ));
    }
    if let (Some(g), Some(d)) = (&spec.metadata.max_change_group, spec.metadata.max_change) {
        out.push_str(&format!("  max change: {g} (Δp = {d:.3})\n"));
    }
    out
}

/// Render a legend line explaining the two bar styles.
pub fn legend() -> &'static str {
    "█ target (query subset)   ░ comparison (entire table)"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VisualizationSpec;
    use memdb::{AggFunc, ColumnDef, DataType, Schema};
    use seedb_core::{AlignedPair, Distribution, Metric, ViewResult, ViewSpec};

    fn spec() -> VisualizationSpec {
        let target = Distribution::from_pairs(vec![
            ("Cambridge, MA".into(), Some(180.55)),
            ("Seattle, WA".into(), Some(145.5)),
        ]);
        let comparison = Distribution::from_pairs(vec![
            ("Cambridge, MA".into(), Some(1000.0)),
            ("Seattle, WA".into(), Some(30000.0)),
        ]);
        let aligned = AlignedPair::align(&target, &comparison);
        let utility = Metric::EarthMovers.distance(&aligned);
        let view = ViewResult {
            spec: ViewSpec::new("store", "amount", AggFunc::Sum),
            utility,
            target,
            comparison,
            aligned,
        };
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        VisualizationSpec::from_view(&view, &schema, Metric::EarthMovers, "sales", None)
    }

    #[test]
    fn render_contains_labels_bars_and_metadata() {
        let text = render(&spec());
        assert!(text.contains("SUM(amount) BY store"));
        assert!(text.contains("Cambridge, MA"));
        assert!(text.contains('█'));
        assert!(text.contains('░'));
        assert!(text.contains("max change"));
        assert!(text.contains("utility"));
    }

    #[test]
    fn bars_scale_with_probability() {
        let text = render(&spec());
        // Target: Cambridge has most mass; comparison: Seattle does.
        let lines: Vec<&str> = text.lines().collect();
        let cambridge_target = lines.iter().find(|l| l.contains("Cambridge")).unwrap();
        let solid = cambridge_target.matches('█').count();
        assert!(solid > BAR_WIDTH / 2, "dominant group gets a long bar");
    }

    #[test]
    fn legend_mentions_both_series() {
        assert!(legend().contains("target"));
        assert!(legend().contains("comparison"));
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&spec()), render(&spec()));
    }
}
