//! Chart-type selection.
//!
//! "For each view delivered by the backend, the frontend creates a
//! visualization based on parameters such as the data type (e.g. ordinal,
//! numeric), number of distinct values, and semantics (e.g. geography vs.
//! time series)." (paper §3.2)

use memdb::{Schema, Semantic};

/// The visualization type chosen for a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartType {
    /// Categorical bar chart, bars sorted by value (the Fig. 1 default).
    BarChart,
    /// Bar chart in the dimension's natural order (ordinal semantics,
    /// e.g. age buckets or amount buckets).
    OrderedBarChart,
    /// Line chart over a temporal dimension (time series).
    LineChart,
    /// Choropleth-style map for geographic dimensions.
    Map,
    /// Histogram for high-cardinality numeric dimensions.
    Histogram,
    /// Bar chart truncated to the heaviest groups, with a "top N" note
    /// (high-cardinality categorical dimensions).
    TopNBarChart,
}

impl ChartType {
    /// The wire-format name (snake_case, serde-compatible).
    pub fn name(self) -> &'static str {
        match self {
            ChartType::BarChart => "bar_chart",
            ChartType::OrderedBarChart => "ordered_bar_chart",
            ChartType::LineChart => "line_chart",
            ChartType::Map => "map",
            ChartType::Histogram => "histogram",
            ChartType::TopNBarChart => "top_n_bar_chart",
        }
    }
}

impl serde_json::Serialize for ChartType {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::Value::String(self.name().to_string())
    }
}

/// Group-count threshold above which a categorical dimension is rendered
/// as a top-N chart and a numeric one as a histogram.
pub const MAX_BARS: usize = 25;

/// Choose a chart type for a view grouping on `dimension` with
/// `num_groups` distinct groups, consulting the schema's data type and
/// semantic hints. Unknown dimensions fall back to a bar chart.
pub fn choose_chart(schema: &Schema, dimension: &str, num_groups: usize) -> ChartType {
    let Ok(def) = schema.column(dimension) else {
        return ChartType::BarChart;
    };
    match def.semantic {
        Semantic::Temporal => ChartType::LineChart,
        Semantic::Geography => ChartType::Map,
        Semantic::Ordinal => ChartType::OrderedBarChart,
        Semantic::None => {
            if num_groups > MAX_BARS {
                if def.dtype.is_numeric() {
                    ChartType::Histogram
                } else {
                    ChartType::TopNBarChart
                }
            } else {
                ChartType::BarChart
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::dimension("state", DataType::Str).with_semantic(Semantic::Geography),
            ColumnDef::dimension("month", DataType::Str).with_semantic(Semantic::Temporal),
            ColumnDef::dimension("size", DataType::Str).with_semantic(Semantic::Ordinal),
            ColumnDef::dimension("price_point", DataType::Float64),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn semantics_drive_chart_type() {
        let s = schema();
        assert_eq!(choose_chart(&s, "state", 10), ChartType::Map);
        assert_eq!(choose_chart(&s, "month", 12), ChartType::LineChart);
        assert_eq!(choose_chart(&s, "size", 3), ChartType::OrderedBarChart);
        assert_eq!(choose_chart(&s, "store", 10), ChartType::BarChart);
    }

    #[test]
    fn cardinality_fallbacks() {
        let s = schema();
        assert_eq!(choose_chart(&s, "store", 100), ChartType::TopNBarChart);
        assert_eq!(choose_chart(&s, "price_point", 100), ChartType::Histogram);
        assert_eq!(choose_chart(&s, "price_point", 5), ChartType::BarChart);
    }

    #[test]
    fn semantics_beat_cardinality() {
        let s = schema();
        // A geographic dimension stays a map even with many groups.
        assert_eq!(choose_chart(&s, "state", 200), ChartType::Map);
    }

    #[test]
    fn unknown_dimension_defaults_to_bar() {
        let s = schema();
        assert_eq!(choose_chart(&s, "missing", 5), ChartType::BarChart);
    }
}
