//! The SeeDB frontend (paper §3.2 and Fig. 5).
//!
//! "SEEDB provides the analyst with three mechanisms for specifying an
//! input query: (a) directly filling in SQL into a text box, (b) using a
//! query builder tool ... (c) using pre-defined query templates which
//! encode commonly performed operations, e.g., selecting outliers in a
//! particular column."
//!
//! [`Frontend`] wraps a [`SeeDb`] engine, accepts queries through all
//! three mechanisms, and turns the recommended views into
//! [`VisualizationSpec`]s plus text renderings.

use memdb::{CmpOp, DbError, DbResult, Expr, TableStats, Value};
use seedb_core::{AnalystQuery, Recommendation, SeeDb};

use crate::ascii;
use crate::spec::VisualizationSpec;

/// Mechanism (b): a form-based query builder for analysts unfamiliar
/// with SQL. Conditions combine conjunctively (AND).
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    table: String,
    conditions: Vec<(String, CmpOp, Value)>,
}

impl QueryBuilder {
    /// Start building a query against `table`.
    pub fn new(table: &str) -> Self {
        QueryBuilder {
            table: table.to_string(),
            conditions: Vec::new(),
        }
    }

    /// Add a condition (column ⟨op⟩ value).
    pub fn filter(mut self, column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        self.conditions.push((column.to_string(), op, value.into()));
        self
    }

    /// Shorthand for an equality condition.
    pub fn filter_eq(self, column: &str, value: impl Into<Value>) -> Self {
        self.filter(column, CmpOp::Eq, value)
    }

    /// Finish: produce the analyst query.
    pub fn build(self) -> AnalystQuery {
        let filter = self
            .conditions
            .into_iter()
            .map(|(col, op, v)| Expr::Cmp {
                op,
                left: Box::new(Expr::col(&col)),
                right: Box::new(Expr::Literal(v)),
            })
            .reduce(Expr::and);
        AnalystQuery {
            table: self.table,
            filter,
        }
    }
}

/// Mechanism (c): pre-defined query templates encoding common analyses.
#[derive(Debug, Clone)]
pub enum QueryTemplate {
    /// Rows where `measure` exceeds `mean + sigmas · std` — "selecting
    /// outliers in a particular column", the paper's own example.
    OutliersAbove {
        /// Fact table.
        table: String,
        /// Numeric column.
        measure: String,
        /// Threshold in standard deviations.
        sigmas: f64,
    },
    /// Rows where `measure` falls below `mean - sigmas · std`.
    OutliersBelow {
        /// Fact table.
        table: String,
        /// Numeric column.
        measure: String,
        /// Threshold in standard deviations.
        sigmas: f64,
    },
    /// Rows belonging to the most frequent value of `dimension`.
    ModalCategory {
        /// Fact table.
        table: String,
        /// Categorical column.
        dimension: String,
    },
}

impl QueryTemplate {
    /// Instantiate the template into a concrete analyst query by
    /// consulting table statistics.
    ///
    /// # Errors
    /// Unknown table/column; `TypeMismatch` when an outlier template
    /// targets a non-numeric column.
    pub fn instantiate(&self, db: &memdb::Database) -> DbResult<AnalystQuery> {
        match self {
            QueryTemplate::OutliersAbove {
                table,
                measure,
                sigmas,
            }
            | QueryTemplate::OutliersBelow {
                table,
                measure,
                sigmas,
            } => {
                let t = db.table(table)?;
                let stats = TableStats::collect(&t);
                let col = stats.column(measure)?;
                let (mean, var) = match (col.mean, col.value_variance) {
                    (Some(m), Some(v)) => (m, v),
                    _ => {
                        return Err(DbError::TypeMismatch {
                            expected: "numeric".to_string(),
                            found: "non-numeric".to_string(),
                            context: format!("outlier template on {measure}"),
                        })
                    }
                };
                let above = matches!(self, QueryTemplate::OutliersAbove { .. });
                let threshold = if above {
                    mean + sigmas * var.sqrt()
                } else {
                    mean - sigmas * var.sqrt()
                };
                let filter = if above {
                    Expr::col(measure).gt(threshold)
                } else {
                    Expr::col(measure).lt(threshold)
                };
                Ok(AnalystQuery::new(table, Some(filter)))
            }
            QueryTemplate::ModalCategory { table, dimension } => {
                let t = db.table(table)?;
                let col = t.column(dimension)?;
                // Find the modal value by scanning.
                let mut counts: std::collections::HashMap<String, usize> =
                    std::collections::HashMap::new();
                for i in 0..t.num_rows() {
                    let v = col.get(i);
                    if !v.is_null() {
                        *counts.entry(v.render()).or_insert(0) += 1;
                    }
                }
                let modal = counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                    .map(|(v, _)| v)
                    .ok_or_else(|| {
                        DbError::InvalidQuery(format!("{dimension} has no non-null values"))
                    })?;
                Ok(AnalystQuery::new(
                    table,
                    Some(Expr::col(dimension).eq(modal)),
                ))
            }
        }
    }
}

/// Everything the frontend shows for one analyst query.
#[derive(Debug)]
pub struct FrontendOutput {
    /// The analyst query that was issued.
    pub query: AnalystQuery,
    /// The backend's full recommendation.
    pub recommendation: Recommendation,
    /// One visualization per recommended (top-k) view.
    pub visualizations: Vec<VisualizationSpec>,
    /// Visualizations for the configured low-utility contrast views.
    pub low_utility_visualizations: Vec<VisualizationSpec>,
}

impl FrontendOutput {
    /// Render the whole output as terminal text (title, charts, pruning
    /// summary) — the library-world stand-in for Fig. 5's right pane.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Query: {}\n", self.query.to_sql()));
        out.push_str(&format!(
            "Candidates: {}   Pruned: {}   Executed queries: {}\n",
            self.recommendation.num_candidates,
            self.recommendation.pruned.len(),
            self.recommendation.num_queries
        ));
        out.push_str(&format!("{}\n\n", ascii::legend()));
        for (i, spec) in self.visualizations.iter().enumerate() {
            out.push_str(&format!("#{} ", i + 1));
            out.push_str(&ascii::render(spec));
            out.push('\n');
        }
        if !self.low_utility_visualizations.is_empty() {
            out.push_str("--- low-utility views (for contrast) ---\n");
            for spec in &self.low_utility_visualizations {
                out.push_str(&ascii::render(spec));
                out.push('\n');
            }
        }
        out
    }
}

/// The thin client: issues queries to a [`SeeDb`] backend and prepares
/// visualizations of the recommended views.
#[derive(Debug)]
pub struct Frontend {
    seedb: SeeDb,
}

impl Frontend {
    /// Wrap an engine.
    pub fn new(seedb: SeeDb) -> Self {
        Frontend { seedb }
    }

    /// Access the wrapped engine (e.g. to adjust configuration knobs).
    pub fn engine(&self) -> &SeeDb {
        &self.seedb
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut SeeDb {
        &mut self.seedb
    }

    /// Mechanism (a): raw SQL.
    ///
    /// # Errors
    /// Parse and execution errors from the backend.
    pub fn issue_sql(&self, sql: &str) -> DbResult<FrontendOutput> {
        let query = AnalystQuery::from_sql(sql)?;
        self.issue(&query)
    }

    /// Mechanism (b): a built query.
    ///
    /// # Errors
    /// Execution errors from the backend.
    pub fn issue(&self, query: &AnalystQuery) -> DbResult<FrontendOutput> {
        let recommendation = self.seedb.recommend(query)?;
        let table = self.seedb.database().table(&query.table)?;
        let schema = table.schema();
        let metric = self.seedb.config().metric;
        let where_sql = query.filter.as_ref().map(Expr::to_sql);
        let make = |views: &[seedb_core::ViewResult]| {
            views
                .iter()
                .map(|v| {
                    VisualizationSpec::from_view(
                        v,
                        schema,
                        metric,
                        &query.table,
                        where_sql.as_deref(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let visualizations = make(&recommendation.views);
        let low_utility_visualizations = make(&recommendation.low_utility);
        Ok(FrontendOutput {
            query: query.clone(),
            recommendation,
            visualizations,
            low_utility_visualizations,
        })
    }

    /// Mechanism (c): a template.
    ///
    /// # Errors
    /// Template instantiation and execution errors.
    pub fn issue_template(&self, template: &QueryTemplate) -> DbResult<FrontendOutput> {
        let query = template.instantiate(self.seedb.database())?;
        self.issue(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedb_core::SeeDbConfig;
    use std::sync::Arc;

    fn frontend() -> Frontend {
        let d = seedb_data::store_orders(4000, 42);
        let db = Arc::new(memdb::Database::new());
        db.register(d.table);
        let mut cfg = SeeDbConfig::recommended().with_k(5);
        cfg.low_utility_views = 2;
        Frontend::new(SeeDb::new(db, cfg))
    }

    #[test]
    fn sql_mechanism_end_to_end() {
        let f = frontend();
        let out = f
            .issue_sql("SELECT * FROM store_orders WHERE product = 'Laserwave Oven'")
            .unwrap();
        assert_eq!(out.visualizations.len(), 5);
        assert_eq!(out.low_utility_visualizations.len(), 2);
        let text = out.render_text();
        assert!(text.contains("Query: SELECT * FROM store_orders"));
        assert!(text.contains('█'));
        assert!(text.contains("low-utility"));
    }

    #[test]
    fn builder_mechanism_matches_sql() {
        let f = frontend();
        let built = QueryBuilder::new("store_orders")
            .filter_eq("product", "Laserwave Oven")
            .build();
        let from_sql =
            AnalystQuery::from_sql("SELECT * FROM store_orders WHERE product = 'Laserwave Oven'")
                .unwrap();
        assert_eq!(built, from_sql);
        let a = f.issue(&built).unwrap();
        let b = f.issue(&from_sql).unwrap();
        assert_eq!(
            a.visualizations[0].metadata.utility,
            b.visualizations[0].metadata.utility
        );
    }

    #[test]
    fn builder_multiple_conditions() {
        let q = QueryBuilder::new("t")
            .filter_eq("a", "x")
            .filter("m", CmpOp::Gt, 5.0)
            .build();
        assert_eq!(q.filter.unwrap().to_sql(), "(a = 'x' AND m > 5.0)");
    }

    #[test]
    fn outlier_template_builds_threshold_filter() {
        let f = frontend();
        let t = QueryTemplate::OutliersAbove {
            table: "store_orders".into(),
            measure: "sales".into(),
            sigmas: 2.0,
        };
        let q = t.instantiate(f.engine().database()).unwrap();
        let sql = q.filter.as_ref().unwrap().to_sql();
        assert!(sql.starts_with("sales > "));
        let out = f.issue(&q).unwrap();
        assert!(!out.visualizations.is_empty());
    }

    #[test]
    fn outlier_template_rejects_non_numeric() {
        let f = frontend();
        let t = QueryTemplate::OutliersAbove {
            table: "store_orders".into(),
            measure: "region".into(),
            sigmas: 2.0,
        };
        assert!(t.instantiate(f.engine().database()).is_err());
    }

    #[test]
    fn modal_category_template() {
        let f = frontend();
        let t = QueryTemplate::ModalCategory {
            table: "store_orders".into(),
            dimension: "segment".into(),
        };
        let q = t.instantiate(f.engine().database()).unwrap();
        // Consumer is the heaviest segment by construction.
        assert_eq!(q.filter.unwrap().to_sql(), "segment = 'Consumer'");
    }

    #[test]
    fn ground_truth_surfaces_in_top_views() {
        let d = seedb_data::store_orders(12_000, 7);
        let ground_truth = d.ground_truth.clone();
        let sql = d.query_sql.clone();
        let db = Arc::new(memdb::Database::new());
        db.register(d.table);
        let f = Frontend::new(SeeDb::new(db, SeeDbConfig::recommended().with_k(6)));
        let out = f.issue_sql(&sql).unwrap();
        let top_dims: Vec<&str> = out
            .visualizations
            .iter()
            .map(|v| v.x_label.as_str())
            .collect();
        // At least one planted dimension (region/state may have been
        // collapsed into one representative by correlation pruning).
        let hits = ground_truth
            .iter()
            .filter(|g| top_dims.contains(&g.as_str()))
            .count();
        assert!(hits >= 1, "top dims {top_dims:?} vs truth {ground_truth:?}");
    }
}
