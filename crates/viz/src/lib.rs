//! # seedb-viz — the SeeDB frontend as a library
//!
//! The paper's frontend is "a thin client that is used to issue queries
//! and display visualizations" (§3.2). This crate reproduces it in
//! library form:
//!
//! * the three query-input mechanisms — raw SQL, a form-based
//!   [`QueryBuilder`], and [`QueryTemplate`]s (e.g. outlier selection) —
//!   in [`frontend`];
//! * chart-type selection from data type / cardinality / semantics in
//!   [`charttype`];
//! * renderer-agnostic [`VisualizationSpec`]s with view metadata and
//!   Vega-Lite export in [`spec`];
//! * terminal bar-chart rendering in [`ascii`].
//!
//! ```
//! use std::sync::Arc;
//! use memdb::Database;
//! use seedb_core::{SeeDb, SeeDbConfig};
//! use seedb_viz::Frontend;
//!
//! let data = seedb_data::store_orders(2000, 1);
//! let db = Arc::new(Database::new());
//! db.register(data.table);
//! let frontend = Frontend::new(SeeDb::new(db, SeeDbConfig::recommended().with_k(3)));
//! let out = frontend.issue_sql(&data.query_sql).unwrap();
//! assert_eq!(out.visualizations.len(), 3);
//! println!("{}", out.render_text());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ascii;
pub mod charttype;
pub mod frontend;
pub mod spec;

pub use charttype::{choose_chart, ChartType, MAX_BARS};
pub use frontend::{Frontend, FrontendOutput, QueryBuilder, QueryTemplate};
pub use spec::{Point, Series, ViewMetadata, VisualizationSpec};
