//! Visualization specifications.
//!
//! The frontend is a thin client: the backend ships it declarative specs,
//! and rendering is the client's problem. [`VisualizationSpec`] is that
//! wire format (serialized with serde), including the view metadata the
//! demo displays ("size of result, sample data, value with maximum change
//! and other statistics", §3.2). [`VisualizationSpec::to_vega_lite`]
//! exports a minimal Vega-Lite v5 spec for rendering in standard tooling.

use memdb::Schema;
use seedb_core::{Metric, ViewResult};
use serde_json::{json, Serialize, Value};

use crate::charttype::{choose_chart, ChartType, MAX_BARS};

/// One point in a rendered series.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Group label.
    pub label: String,
    /// Normalized probability (what the deviation metric saw).
    pub probability: f64,
    /// Raw aggregate value (what the axis shows).
    pub raw: f64,
}

/// A named series (target or comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// `"target"` (the analyst's subset) or `"comparison"` (whole table).
    pub name: String,
    /// Points, in canonical group order.
    pub points: Vec<Point>,
}

/// View metadata shown next to each visualization.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewMetadata {
    /// Deviation-based utility.
    pub utility: f64,
    /// Metric used.
    pub metric: String,
    /// Number of groups in the aligned view.
    pub num_groups: usize,
    /// Group with the largest probability change, if any.
    pub max_change_group: Option<String>,
    /// Magnitude of that change.
    pub max_change: Option<f64>,
    /// The target-view SQL that produced this visualization.
    pub sql: String,
}

/// A complete, renderer-agnostic visualization description.
#[derive(Debug, Clone, PartialEq)]
pub struct VisualizationSpec {
    /// Chart title, e.g. `SUM(amount) BY store`.
    pub title: String,
    /// Chosen chart type.
    pub chart_type: ChartType,
    /// X-axis label (the grouping attribute).
    pub x_label: String,
    /// Y-axis label (the aggregate).
    pub y_label: String,
    /// Target and comparison series (aligned on labels).
    pub series: Vec<Series>,
    /// Whether groups were truncated to the top [`MAX_BARS`].
    pub truncated: bool,
    /// Attached metadata.
    pub metadata: ViewMetadata,
}

impl Serialize for Point {
    fn to_json_value(&self) -> Value {
        json!({
            "label": self.label,
            "probability": self.probability,
            "raw": self.raw,
        })
    }
}

impl Serialize for Series {
    fn to_json_value(&self) -> Value {
        json!({
            "name": self.name,
            "points": self.points,
        })
    }
}

impl Serialize for ViewMetadata {
    fn to_json_value(&self) -> Value {
        json!({
            "utility": self.utility,
            "metric": self.metric,
            "num_groups": self.num_groups,
            "max_change_group": self.max_change_group,
            "max_change": self.max_change,
            "sql": self.sql,
        })
    }
}

impl Serialize for VisualizationSpec {
    fn to_json_value(&self) -> Value {
        json!({
            "title": self.title,
            "chart_type": self.chart_type,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": self.series,
            "truncated": self.truncated,
            "metadata": self.metadata,
        })
    }
}

impl VisualizationSpec {
    /// Build a spec from a scored view.
    ///
    /// `schema` supplies data types and semantic hints for chart-type
    /// selection; `table`/`where_sql` reconstruct the displayed SQL.
    pub fn from_view(
        view: &ViewResult,
        schema: &Schema,
        metric: Metric,
        table: &str,
        where_sql: Option<&str>,
    ) -> VisualizationSpec {
        let aligned = &view.aligned;
        let chart_type = choose_chart(schema, &view.spec.dimension, aligned.len());

        // Raw values per aligned label (0 when the side lacks the group).
        let raw_of = |dist: &seedb_core::Distribution, label: &str| -> f64 {
            dist.labels
                .iter()
                .position(|l| l == label)
                .map(|i| dist.raw[i])
                .unwrap_or(0.0)
        };

        let mut order: Vec<usize> = (0..aligned.len()).collect();
        let mut truncated = false;
        if matches!(chart_type, ChartType::TopNBarChart | ChartType::Histogram)
            && aligned.len() > MAX_BARS
        {
            // Keep the heaviest comparison-side groups.
            order.sort_by(|&a, &b| {
                aligned.q[b]
                    .partial_cmp(&aligned.q[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.truncate(MAX_BARS);
            order.sort_unstable();
            truncated = true;
        }

        let make_series = |name: &str, probs: &[f64], dist: &seedb_core::Distribution| Series {
            name: name.to_string(),
            points: order
                .iter()
                .map(|&i| Point {
                    label: aligned.labels[i].clone(),
                    probability: probs[i],
                    raw: raw_of(dist, &aligned.labels[i]),
                })
                .collect(),
        };

        let y_label = match &view.spec.measure {
            Some(m) => format!("{}({m})", view.spec.func.sql()),
            None => "COUNT(*)".to_string(),
        };
        let max_change = aligned.max_change();

        VisualizationSpec {
            title: view.spec.label(),
            chart_type,
            x_label: view.spec.dimension.clone(),
            y_label,
            series: vec![
                make_series("target", &aligned.p, &view.target),
                make_series("comparison", &aligned.q, &view.comparison),
            ],
            truncated,
            metadata: ViewMetadata {
                utility: view.utility,
                metric: metric.name().to_string(),
                num_groups: aligned.len(),
                max_change_group: max_change.map(|(l, _)| l.to_string()),
                max_change: max_change.map(|(_, d)| d),
                sql: view.spec.to_sql(table, where_sql),
            },
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Export a minimal Vega-Lite v5 spec (grouped bar / line chart of
    /// target vs comparison probabilities).
    pub fn to_vega_lite(&self) -> serde_json::Value {
        let mark = match self.chart_type {
            ChartType::LineChart => "line",
            _ => "bar",
        };
        let values: Vec<serde_json::Value> = self
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(move |p| {
                    serde_json::json!({
                        "series": s.name,
                        "label": p.label,
                        "probability": p.probability,
                        "raw": p.raw,
                    })
                })
            })
            .collect();
        serde_json::json!({
            "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
            "title": self.title,
            "mark": mark,
            "data": {"values": values},
            "encoding": {
                "x": {"field": "label", "type": "nominal", "title": self.x_label},
                "y": {"field": "probability", "type": "quantitative", "title": self.y_label},
                "xOffset": {"field": "series"},
                "color": {"field": "series"}
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{AggFunc, ColumnDef, DataType};
    use seedb_core::{AlignedPair, Distribution, ViewSpec};

    fn view() -> ViewResult {
        let target = Distribution::from_pairs(vec![
            ("MA".into(), Some(180.55)),
            ("WA".into(), Some(145.5)),
        ]);
        let comparison = Distribution::from_pairs(vec![
            ("MA".into(), Some(1000.0)),
            ("WA".into(), Some(9000.0)),
        ]);
        let aligned = AlignedPair::align(&target, &comparison);
        let utility = Metric::EarthMovers.distance(&aligned);
        ViewResult {
            spec: ViewSpec::new("store", "amount", AggFunc::Sum),
            utility,
            target,
            comparison,
            aligned,
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn spec_carries_both_series() {
        let spec = VisualizationSpec::from_view(
            &view(),
            &schema(),
            Metric::EarthMovers,
            "sales",
            Some("product = 'Laserwave'"),
        );
        assert_eq!(spec.series.len(), 2);
        assert_eq!(spec.series[0].name, "target");
        assert_eq!(spec.series[0].points.len(), 2);
        assert!((spec.series[0].points[0].raw - 180.55).abs() < 1e-12);
        assert_eq!(spec.chart_type, ChartType::BarChart);
        assert!(spec.metadata.sql.contains("WHERE product = 'Laserwave'"));
        assert!(spec.metadata.utility > 0.0);
        assert_eq!(spec.metadata.num_groups, 2);
    }

    #[test]
    fn json_serialization() {
        let spec =
            VisualizationSpec::from_view(&view(), &schema(), Metric::EarthMovers, "sales", None);
        let json = spec.to_json();
        assert!(json.contains("\"chart_type\": \"bar_chart\""));
        assert!(json.contains("\"target\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["title"], "SUM(amount) BY store");
    }

    #[test]
    fn vega_lite_export() {
        let spec =
            VisualizationSpec::from_view(&view(), &schema(), Metric::EarthMovers, "sales", None);
        let vl = spec.to_vega_lite();
        assert_eq!(vl["mark"], "bar");
        assert_eq!(vl["data"]["values"].as_array().unwrap().len(), 4);
        assert_eq!(vl["encoding"]["x"]["field"], "label");
    }

    #[test]
    fn truncation_for_high_cardinality() {
        let n = 60;
        let target = Distribution::from_pairs(
            (0..n)
                .map(|i| (format!("g{i:03}"), Some(1.0 + i as f64)))
                .collect(),
        );
        let comparison = target.clone();
        let aligned = AlignedPair::align(&target, &comparison);
        let v = ViewResult {
            spec: ViewSpec::new("store", "amount", AggFunc::Sum),
            utility: 0.0,
            target,
            comparison,
            aligned,
        };
        let spec = VisualizationSpec::from_view(&v, &schema(), Metric::EarthMovers, "sales", None);
        assert_eq!(spec.chart_type, ChartType::TopNBarChart);
        assert!(spec.truncated);
        assert_eq!(spec.series[0].points.len(), MAX_BARS);
        // The heaviest groups survive truncation.
        assert!(spec.series[0].points.iter().any(|p| p.label == "g059"));
        assert!(!spec.series[0].points.iter().any(|p| p.label == "g000"));
    }

    #[test]
    fn max_change_metadata_present() {
        let spec =
            VisualizationSpec::from_view(&view(), &schema(), Metric::EarthMovers, "sales", None);
        assert!(spec.metadata.max_change_group.is_some());
        assert!(spec.metadata.max_change.unwrap() > 0.0);
    }
}
