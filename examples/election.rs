//! Demo Scenario 1 on the Election Contributions dataset.
//!
//! "This is an example of a dataset typically analyzed by non-expert data
//! analysts like journalists or historians. With this dataset, we
//! demonstrate how non-experts can use SEEDB to quickly arrive at
//! interesting visualizations." (paper §4)
//!
//! A journalist asks: *who funds candidate A. Stark?* SeeDB answers with
//! the views that deviate most from the overall contribution pool —
//! occupation and amount-bucket, the planted ground truth — and also
//! shows known-boring views for contrast. The example then swaps distance
//! metrics to show how the metric knob changes (or doesn't change) the
//! story.
//!
//! ```sh
//! cargo run --release --example election
//! ```

use std::sync::Arc;

use seedb::core::{Metric, SeeDb, SeeDbConfig};
use seedb::memdb::Database;
use seedb::viz::Frontend;

fn main() {
    let data = seedb::data::election_contributions(30_000, 7);
    println!("dataset: {}\n", data.description);
    println!("analyst query: {}\n", data.query_sql);
    let ground_truth = data.ground_truth.clone();
    let query_sql = data.query_sql.clone();

    let db = Arc::new(Database::new());
    db.register(data.table);

    // --- Recommended views with the default metric ------------------
    let mut config = SeeDbConfig::recommended().with_k(4);
    config.low_utility_views = 2;
    let frontend = Frontend::new(SeeDb::new(db.clone(), config));
    let out = frontend.issue_sql(&query_sql).expect("query runs");
    println!("{}", out.render_text());

    let top_dims: Vec<&str> = out
        .visualizations
        .iter()
        .map(|v| v.x_label.as_str())
        .collect();
    let recall = ground_truth
        .iter()
        .filter(|g| top_dims.contains(&g.as_str()))
        .count() as f64
        / ground_truth.len() as f64;
    println!(
        "ground truth {:?} -> recall@{} = {recall:.2}\n",
        ground_truth,
        out.visualizations.len()
    );
    assert!(recall >= 0.5, "SeeDB should recover the planted trends");

    // --- The metric knob ---------------------------------------------
    println!("top view per distance metric:");
    for metric in Metric::all() {
        let seedb = SeeDb::new(
            db.clone(),
            SeeDbConfig::recommended().with_k(1).with_metric(metric),
        );
        let rec = seedb.recommend_sql(&query_sql).expect("query runs");
        let v = &rec.views[0];
        println!(
            "  {:<10} -> {}  (utility {:.4})",
            metric.name(),
            v.spec.label(),
            v.utility
        );
    }

    // --- What was pruned and why --------------------------------------
    let pruned = &out.recommendation.pruned;
    println!("\npruned {} views; examples:", pruned.len());
    let mut seen = std::collections::HashSet::new();
    for p in pruned {
        let reason = p.reason.to_string();
        let kind = reason.split('(').next().unwrap_or("").to_string();
        if seen.insert(kind) {
            println!("  {} — {}", p.spec.label(), reason);
        }
    }
    if !out.recommendation.clusters.is_empty() {
        println!(
            "correlation clusters: {:?} (candidate/party move together)",
            out.recommendation.clusters
        );
    }
}
