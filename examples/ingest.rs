//! Extension demo: live ingest with incremental cache maintenance.
//!
//! A SeeDB deployment serves recommendations while the fact table keeps
//! growing. `memdb`'s segmented storage makes appends cheap and
//! non-disruptive (version v+1 shares every sealed segment with v), and
//! the serving layer refreshes its cached partial-aggregate states by
//! scanning **only the appended delta rows** — byte-identical to a cold
//! recomputation at the new version, at a fraction of the cost. This
//! example drives an append loop through `Service::append_rows` and
//! asserts, at every step:
//!
//! * the incrementally refreshed recommendation equals a cold engine
//!   run over an identically built one-shot table, to the bit;
//! * the warm path performs zero full-table scans — the DBMS cost
//!   counters charge exactly the delta rows, nothing more.
//!
//! ```sh
//! cargo run --release --example ingest
//! ```

use std::sync::Arc;
use std::time::Instant;

use seedb::core::{AnalystQuery, Recommendation, SeeDb, SeeDbConfig, Service, ServiceConfig};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{Database, Table, Value};

/// Pipeline config whose results do not depend on workload history.
fn pipeline_config() -> SeeDbConfig {
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.pruning.access_frequency = false;
    cfg
}

/// Cold ground truth: rebuild the live table's rows into a fresh
/// one-shot table and run the single-shot engine over it.
fn cold_recommend(live: &Table, analyst: &AnalystQuery) -> Recommendation {
    let mut t = Table::new(live.name(), live.schema().clone());
    for i in 0..live.num_rows() {
        t.push_row(live.row(i)).expect("row round-trips");
    }
    let db = Arc::new(Database::new());
    db.register(t);
    SeeDb::new(db, pipeline_config())
        .recommend(analyst)
        .expect("cold recommendation")
}

fn assert_identical(cold: &Recommendation, live: &Recommendation) {
    assert_eq!(cold.all.len(), live.all.len());
    for (a, b) in cold.all.iter().zip(&live.all) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(
            a.utility.to_bits(),
            b.utility.to_bits(),
            "{}: {} vs {}",
            a.spec,
            a.utility,
            b.utility
        );
    }
}

fn main() {
    let base_rows = 60_000;
    let chunk = 300; // 0.5% of the base per append
    let spec = SyntheticSpec::knobs(base_rows, 6, 8, 1.0, 2, 21).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 30.0)],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    let service = Service::new(
        db.clone(),
        ServiceConfig::recommended().with_seedb(pipeline_config()),
    );

    // Warm the cache once.
    let t0 = Instant::now();
    let warm = service.recommend(&analyst).expect("warm-up");
    assert_eq!(warm.num_queries, 1, "one shared-scan plan per request");
    println!(
        "{base_rows} rows, cache warmed in {:.1} ms ({} candidate views)\n",
        t0.elapsed().as_secs_f64() * 1e3,
        warm.num_candidates
    );
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>12}",
        "append", "rows", "version", "delta-scan", "refresh ms"
    );

    for step in 1..=4u64 {
        // Live traffic: a fresh chunk from the same generator family.
        let delta: Vec<Vec<Value>> = {
            let t = SyntheticSpec::knobs(chunk, 6, 8, 1.0, 2, 100 + step).generate();
            (0..chunk).map(|i| t.row(i)).collect()
        };
        let live = service
            .append_rows("synthetic", delta)
            .expect("append publishes");

        let cost_before = db.cost();
        let stats_before = service.cache_stats();
        let t0 = Instant::now();
        let rec = service
            .recommend(&analyst)
            .expect("refreshed recommendation");
        let refresh_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cost = db.cost().since(&cost_before);
        let stats = service.cache_stats();

        // Cost-counter assertion: the warm path performed ZERO
        // full-table scans — the only scan work charged is the delta.
        assert_eq!(
            cost.rows_scanned, chunk as u64,
            "refresh must scan exactly the delta rows"
        );
        assert_eq!(
            stats.refreshes - stats_before.refreshes,
            1,
            "exactly one cached state refreshed incrementally"
        );
        assert_eq!(stats.refresh_fallbacks, 0, "no recompute fallbacks");

        // Byte-identity: incremental == cold recompute at this version.
        let cold = cold_recommend(&live, &analyst);
        assert_identical(&cold, &rec);

        println!(
            "{step:>6} {:>9} {:>10} {:>9} rows {refresh_ms:>9.1}",
            live.num_rows(),
            live.version(),
            cost.rows_scanned,
        );
    }

    let final_stats = service.cache_stats();
    println!(
        "\ntotal: {} incremental refreshes over {} delta rows, {} fallbacks",
        final_stats.refreshes, final_stats.refresh_rows, final_stats.refresh_fallbacks
    );
    println!("incremental refresh byte-identical to cold recompute at every version ✔");
    println!("warm path scanned only the delta rows (zero full-table scans) ✔");
}
