//! The paper's running example, end to end: Table 1 and Figures 1–3.
//!
//! Section 1 of the paper walks through an analyst studying the
//! "Laserwave Oven": she issues
//! `Q = SELECT * FROM Sales WHERE Product = 'Laserwave'`, builds the
//! view `SELECT store, SUM(amount) ... GROUP BY store` (Table 1 /
//! Figure 1), and compares it against total sales by store over the whole
//! dataset. Two scenarios: in **Scenario A** (Figure 2) overall sales
//! show the *opposite* trend — the view is interesting; in **Scenario B**
//! (Figure 3) overall sales follow the *same* trend — it is not.
//!
//! This example constructs both scenarios, prints Table 1 and the three
//! charts, and shows that SeeDB's utility score separates them.
//!
//! ```sh
//! cargo run --release --example laserwave
//! ```

use std::sync::Arc;

use seedb::core::{AnalystQuery, Metric, SeeDb, SeeDbConfig};
use seedb::memdb::{
    AggFunc, AggSpec, ColumnDef, DataType, Database, Expr, Query, Schema, Semantic, Table, Value,
};
use seedb::viz::{Frontend, VisualizationSpec};

const STORES: [&str; 4] = [
    "Cambridge, MA",
    "New York, NY",
    "San Francisco, CA",
    "Seattle, WA",
];

/// Laserwave sales per store — Table 1's exact numbers.
const LASERWAVE: [(&str, f64); 4] = [
    ("Cambridge, MA", 180.55),
    ("Seattle, WA", 145.50),
    ("New York, NY", 122.00),
    ("San Francisco, CA", 90.13),
];

fn sales_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::dimension("store", DataType::Str).with_semantic(Semantic::Geography),
        ColumnDef::dimension("product", DataType::Str),
        ColumnDef::measure("amount", DataType::Float64),
    ])
    .unwrap()
}

/// Build a Sales table: the Table-1 Laserwave rows plus an "all other
/// products" background whose store distribution is `background`.
fn build_sales(name: &str, background: &[(&str, f64)]) -> Table {
    let mut t = Table::new(name, sales_schema());
    for (store, total) in LASERWAVE {
        // Split each store's Laserwave total into a few receipts.
        for part in [0.5, 0.3, 0.2] {
            t.push_row(vec![
                store.into(),
                "Laserwave".into(),
                Value::Float(total * part),
            ])
            .unwrap();
        }
    }
    for &(store, total) in background {
        for part in [0.4, 0.35, 0.25] {
            t.push_row(vec![
                store.into(),
                "Other".into(),
                Value::Float(total * part),
            ])
            .unwrap();
        }
    }
    t
}

fn show_view(db: &Database, table: &str, filter: Option<Expr>, caption: &str) {
    let mut q = Query::aggregate(
        table,
        vec!["store"],
        vec![AggSpec::new(AggFunc::Sum, "amount").with_alias("Total Sales ($)")],
    );
    if let Some(f) = filter {
        q = q.with_filter(f);
    }
    let out = db.run(&q).expect("view query runs");
    println!("{caption}\n{}", out.result.to_text());
}

fn main() {
    // Scenario A (Figure 2): overall sales skew *west* — the opposite of
    // the Laserwave trend. Scenario B (Figure 3): overall sales follow
    // the *same* east-heavy trend as Laserwave.
    let scenario_a_background: Vec<(&str, f64)> = vec![
        ("Cambridge, MA", 1_819.45), // + Laserwave 180.55 ≈ 2 000
        ("New York, NY", 19_878.0),
        ("San Francisco, CA", 36_909.87),
        ("Seattle, WA", 38_854.5),
    ];
    let scenario_b_background: Vec<(&str, f64)> = vec![
        ("Cambridge, MA", 39_819.45),
        ("New York, NY", 26_878.0),
        ("San Francisco, CA", 19_909.87),
        ("Seattle, WA", 31_854.5),
    ];

    let db = Arc::new(Database::new());
    db.register(build_sales("sales_a", &scenario_a_background));
    db.register(build_sales("sales_b", &scenario_b_background));

    let laser = Expr::col("product").eq("Laserwave");

    // --- Table 1 + Figure 1: the target view ------------------------
    show_view(
        &db,
        "sales_a",
        Some(laser.clone()),
        "Table 1: Total Sales by Store for Laserwave",
    );

    // --- Figures 2 and 3: the two comparison views ------------------
    show_view(
        &db,
        "sales_a",
        None,
        "Scenario A (Fig. 2): Total Sales by Store — opposite trend",
    );
    show_view(
        &db,
        "sales_b",
        None,
        "Scenario B (Fig. 3): Total Sales by Store — same trend",
    );

    // --- SeeDB's verdict --------------------------------------------
    println!("SeeDB utility of the view SUM(amount) BY store:\n");
    let mut utilities = Vec::new();
    for (table, label) in [("sales_a", "Scenario A"), ("sales_b", "Scenario B")] {
        let seedb = SeeDb::new(
            db.clone(),
            SeeDbConfig::recommended()
                .with_k(1)
                .with_functions(seedb::core::FunctionSet::sum_only()),
        );
        let rec = seedb
            .recommend(&AnalystQuery::new(table, Some(laser.clone())))
            .expect("recommendation runs");
        let view = &rec.views[0];
        assert_eq!(view.spec.label(), "SUM(amount) BY store");
        println!(
            "  {label}: utility = {:.4} ({})",
            view.utility,
            Metric::EarthMovers.name()
        );
        utilities.push(view.utility);

        // Render the paired bar chart for this scenario.
        let table_ref = db.table(table).unwrap();
        let spec = VisualizationSpec::from_view(
            view,
            table_ref.schema(),
            Metric::EarthMovers,
            table,
            Some("product = 'Laserwave'"),
        );
        println!("{}", seedb::viz::ascii::render(&spec));
    }

    assert!(
        utilities[0] > 5.0 * utilities[1].max(1e-6),
        "Scenario A must score much higher than Scenario B"
    );
    println!(
        "=> Scenario A deviates ({}x higher utility): SeeDB recommends the view.\n   \
         Scenario B matches the overall trend: SeeDB ranks it uninteresting.",
        (utilities[0] / utilities[1].max(1e-9)).round()
    );

    // The full pipeline on scenario A also *discovers* the store view on
    // its own (it is the only dimension left after excluding the filter
    // attribute).
    let frontend = Frontend::new(SeeDb::with_defaults(db.clone()));
    let out = frontend
        .issue_sql("SELECT * FROM sales_a WHERE product = 'Laserwave'")
        .unwrap();
    assert_eq!(out.visualizations[0].x_label, "store");
    for store in STORES {
        assert!(out.visualizations[0].series[0]
            .points
            .iter()
            .any(|p| p.label == store));
    }
    println!("\nFull-pipeline check passed: SeeDB surfaces the store view unprompted.");
}
