//! Demo Scenario 2: the performance and optimization knobs.
//!
//! "Attendees will be able to easily experiment with a range of synthetic
//! datasets and input queries by adjusting various 'knobs' such as data
//! size, number of attributes, and data distribution. In addition,
//! attendees will also be able to select the optimizations that SEEDB
//! applies and observe the effect on response times and accuracy."
//!
//! This example sweeps the optimizations one at a time over a synthetic
//! dataset with a planted deviation and prints latency, deterministic
//! scan cost, and (for sampling) ranking accuracy versus the exact top-k.
//!
//! ```sh
//! cargo run --release --example performance_knobs
//! ```

use std::sync::Arc;

use seedb::core::{AnalystQuery, GroupByCombining, SeeDb, SeeDbConfig, ViewResult};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{Database, SampleSpec};

fn top_dims(views: &[ViewResult], k: usize) -> Vec<String> {
    views.iter().take(k).map(|v| v.spec.label()).collect()
}

fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

fn main() {
    // Knobs: 200k rows, 8 dimensions of cardinality 12 (Zipf 1.0),
    // 3 measures, deviation planted on d1 and d2.
    let spec = SyntheticSpec::knobs(200_000, 8, 12, 1.0, 3, 99).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 40.0)],
    });
    println!(
        "synthetic dataset: {} rows, {} dims x cardinality 12, {} measures",
        spec.rows,
        spec.dims.len(),
        spec.measures.len()
    );
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());

    let k = 5;
    let mut baseline_top: Vec<String> = Vec::new();

    println!(
        "\n{:<34} {:>9} {:>9} {:>12} {:>8}",
        "configuration", "queries", "ms", "rows scanned", "top-k ="
    );

    let configs: Vec<(&str, SeeDbConfig)> = vec![
        ("basic framework", SeeDbConfig::basic()),
        ("+ combine target/comparison", {
            let mut c = SeeDbConfig::basic();
            c.optimizer.combine_target_comparison = true;
            c
        }),
        ("+ combine aggregates", {
            let mut c = SeeDbConfig::basic();
            c.optimizer.combine_target_comparison = true;
            c.optimizer.combine_aggregates = true;
            c
        }),
        ("+ combine group-bys (sets)", {
            let mut c = SeeDbConfig::basic();
            c.optimizer.combine_target_comparison = true;
            c.optimizer.combine_aggregates = true;
            c.optimizer.group_by_combining = GroupByCombining::GroupingSets;
            c.optimizer.memory_budget_groups = 100_000;
            c
        }),
        ("+ parallel execution", {
            let mut c = SeeDbConfig::recommended();
            c.pruning = seedb::core::PruningConfig::disabled();
            c
        }),
        ("+ sampling 10%", {
            let mut c = SeeDbConfig::recommended();
            c.pruning = seedb::core::PruningConfig::disabled();
            c.optimizer.sample = Some(SampleSpec::Bernoulli {
                fraction: 0.1,
                seed: 1,
            });
            c
        }),
        ("all + pruning", SeeDbConfig::recommended()),
    ];

    for (label, config) in configs {
        let sampled = config.optimizer.sample.is_some();
        let seedb = SeeDb::new(db.clone(), config.with_k(k));
        let rec = seedb.recommend(&analyst).expect("recommendation runs");
        let tops = top_dims(&rec.all, k);
        if baseline_top.is_empty() {
            baseline_top = tops.clone();
        }
        let acc = jaccard(&baseline_top, &tops);
        println!(
            "{:<34} {:>9} {:>9.0} {:>12} {:>8}",
            label,
            rec.num_queries,
            rec.timings.total().as_secs_f64() * 1e3,
            rec.cost.rows_scanned,
            if sampled {
                format!("J={acc:.2}")
            } else if acc == 1.0 {
                "exact".to_string()
            } else {
                format!("J={acc:.2}")
            }
        );
    }

    // The planted dimensions must top the exact ranking.
    println!("\nexact top-{k}: {baseline_top:?}");
    assert!(
        baseline_top
            .iter()
            .filter(|l| l.contains("BY d1") || l.contains("BY d2"))
            .count()
            >= 2,
        "planted deviations d1/d2 should dominate the top-k"
    );
    println!("planted deviations (d1, d2) dominate the ranking — Scenario 1 ✔");
}
