//! Extension demo: durability and crash recovery under live ingest.
//!
//! A SeeDB service ingests while serving; the process then dies and a
//! fresh one warm-starts from the database directory. This example
//! drives the full cycle and asserts, at every step:
//!
//! * no acknowledged `append_rows` batch is lost — the batch appended
//!   *after* the last checkpoint lives only in the WAL, and replay
//!   restores it exactly (row ids, dictionary codes, versions,
//!   lineage);
//! * the reopened service's recommendation is **byte-identical** to the
//!   never-restarted in-memory service's;
//! * the restart is warm: the spilled plan set is re-executed at open,
//!   so the first post-restart request performs zero table scans;
//! * live ingest keeps its incremental contract across the restart —
//!   an append onto the *reopened* service refreshes the cache by
//!   scanning only the delta rows.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use std::sync::Arc;
use std::time::Instant;

use seedb::core::{AnalystQuery, Recommendation, SeeDbConfig, Service, ServiceConfig};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{Database, Value};

/// Pipeline config whose results do not depend on workload history.
fn pipeline_config() -> SeeDbConfig {
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.pruning.access_frequency = false;
    cfg
}

fn service_config() -> ServiceConfig {
    ServiceConfig::recommended().with_seedb(pipeline_config())
}

fn assert_identical(a: &Recommendation, b: &Recommendation, what: &str) {
    assert_eq!(a.all.len(), b.all.len(), "{what}: view count");
    for (x, y) in a.all.iter().zip(&b.all) {
        assert_eq!(x.spec, y.spec, "{what}: view spec");
        assert_eq!(
            x.utility.to_bits(),
            y.utility.to_bits(),
            "{what}: {} utility {} vs {}",
            x.spec,
            x.utility,
            y.utility
        );
    }
}

fn main() {
    let base_rows = 40_000;
    let chunk = 200;
    let dir = std::env::temp_dir().join(format!("seedb-persistence-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = SyntheticSpec::knobs(base_rows, 6, 8, 1.0, 2, 21).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 30.0)],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    let live = Service::new(db.clone(), service_config());

    // Serve once (cache warms), persist, then ingest one more batch —
    // the batch lands in the WAL only; no checkpoint runs below the
    // threshold, so recovery must replay it.
    live.recommend(&analyst).expect("warm-up");
    let t0 = Instant::now();
    live.persist(&dir).expect("persist");
    println!(
        "{base_rows} rows persisted to {} in {:.1} ms",
        dir.display(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    let delta: Vec<Vec<Value>> = {
        let t = SyntheticSpec::knobs(chunk, 6, 8, 1.0, 2, 777).generate();
        (0..chunk).map(|i| t.row(i)).collect()
    };
    let live_table = live
        .append_rows("synthetic", delta)
        .expect("append publishes");
    let wal = db.durability_summary().expect("durable");
    assert!(wal.wal_records >= 1, "appended batch must sit in the WAL");
    println!(
        "appended {chunk} rows post-checkpoint (WAL: {} record(s), {} bytes)",
        wal.wal_records, wal.wal_bytes
    );
    let truth = live.recommend(&analyst).expect("live recommendation");

    // ── simulated crash ────────────────────────────────────────────
    // The `live` service keeps running as the never-restarted ground
    // truth; the reopened service must match it bit-for-bit.
    let t0 = Instant::now();
    let reopened = Service::open(&dir, service_config()).expect("open recovers");
    println!(
        "reopened in {:.1} ms ({} state(s) warm in the cache)",
        t0.elapsed().as_secs_f64() * 1e3,
        reopened.cache_len()
    );

    let recovered_table = reopened.database().table("synthetic").expect("recovered");
    assert_eq!(
        recovered_table.num_rows(),
        live_table.num_rows(),
        "WAL replay restores the acknowledged batch"
    );
    assert_eq!(recovered_table.version(), live_table.version());
    assert_eq!(recovered_table.lineage(), live_table.lineage());
    for i in (live_table.num_rows() - chunk)..live_table.num_rows() {
        assert_eq!(live_table.row(i), recovered_table.row(i), "row {i}");
    }
    println!("recovered table matches the live one (rows, version, lineage) ✔");

    // Warm restart: the first post-restart request is served from the
    // cache rebuilt at open — zero table scans.
    let cost_before = reopened.database().cost();
    let rec = reopened.recommend(&analyst).expect("post-restart serve");
    let cost = reopened.database().cost().since(&cost_before);
    assert_eq!(cost.table_scans, 0, "first post-restart round is warm");
    assert_identical(&truth, &rec, "reopened vs never-restarted");
    println!("post-restart recommendation byte-identical to the never-restarted run, 0 scans ✔");

    // Ingest continues across the restart with the incremental-refresh
    // contract intact: only the delta rows are scanned.
    let delta: Vec<Vec<Value>> = {
        let t = SyntheticSpec::knobs(chunk, 6, 8, 1.0, 2, 778).generate();
        (0..chunk).map(|i| t.row(i)).collect()
    };
    reopened
        .append_rows("synthetic", delta.clone())
        .expect("append after restart");
    let cost_before = reopened.database().cost();
    let stats_before = reopened.cache_stats();
    let rec2 = reopened.recommend(&analyst).expect("refreshed serve");
    let cost = reopened.database().cost().since(&cost_before);
    let stats = reopened.cache_stats();
    assert_eq!(
        cost.rows_scanned, chunk as u64,
        "refresh must scan exactly the delta rows"
    );
    assert_eq!(stats.refreshes - stats_before.refreshes, 1);

    // Same append to the never-restarted service: still bit-identical.
    live.append_rows("synthetic", delta).expect("mirror append");
    let truth2 = live.recommend(&analyst).expect("live refreshed");
    assert_identical(&truth2, &rec2, "post-restart ingest");
    println!("delta-only refresh after restart ({chunk} rows scanned), still byte-identical ✔");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\ndurable ingest → crash → warm recovery: all invariants hold ✔");
}
