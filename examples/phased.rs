//! Extension demo: phased execution with confidence-interval pruning,
//! sequential and partition-parallel.
//!
//! Challenge (d) in the paper: "we must trade-off accuracy of
//! visualizations or estimation of 'interestingness' for reduced
//! latency." Beyond sampling, the authors' follow-up work processes the
//! table in phases and discards views whose utility confidence interval
//! drops below the running top-k — hopeless views stop consuming work
//! early, while the surviving views end with *exact* utilities. With
//! `workers > 1` each phase slice additionally fans out across row
//! partitions whose mergeable partial aggregates combine
//! deterministically, so the outcome is identical for every worker
//! count.
//!
//! ```sh
//! cargo run --release --example phased
//! ```

use std::sync::Arc;
use std::time::Instant;

use seedb::core::{
    enumerate_views, run_phased, AnalystQuery, FunctionSet, Metric, PhasedConfig, PruningConfig,
    SeeDb, SeeDbConfig,
};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::Database;

fn main() {
    // 300k rows, 10 dimensions — only d1/d2 deviate under the query.
    let spec = SyntheticSpec::knobs(300_000, 10, 10, 1.0, 2, 77).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 35.0)],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    let table = db.table("synthetic").unwrap();

    let views: Vec<_> = enumerate_views(table.schema(), &FunctionSet::standard())
        .into_iter()
        .filter(|v| v.dimension != "d0") // exclude the filter attribute
        .collect();
    println!(
        "{} candidate views over {} rows, k = 5\n",
        views.len(),
        table.num_rows()
    );

    // Exact baseline.
    let mut exact_cfg = SeeDbConfig::recommended().with_k(5);
    exact_cfg.pruning = PruningConfig::disabled();
    exact_cfg.execution = exact_cfg.execution.with_workers(1);
    let t0 = Instant::now();
    let exact = SeeDb::new(db.clone(), exact_cfg)
        .recommend(&analyst)
        .unwrap();
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phased with early termination, single-threaded.
    let cfg = PhasedConfig {
        phases: 10,
        k: 5,
        delta: 0.05,
        min_phases: 2,
        metric: Metric::EarthMovers,
        workers: 1,
    };
    let t0 = Instant::now();
    let phased = run_phased(&table, &analyst, &views, &cfg).unwrap();
    let phased_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phased + intra-plan parallelism: every phase slice splits across
    // row-partition workers with mergeable partial aggregates.
    let workers = seedb::core::default_workers().max(4);
    let par_cfg = PhasedConfig {
        workers,
        ..cfg.clone()
    };
    let t0 = Instant::now();
    let parallel = run_phased(&table, &analyst, &views, &par_cfg).unwrap();
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("survivors per phase: {:?}", phased.survivors_per_phase);
    println!(
        "view-phase work: {} of {} ({:.0}% saved)",
        phased.view_phases,
        views.len() * cfg.phases,
        100.0 * phased.work_saved(views.len(), cfg.phases)
    );
    println!("early-pruned views: {} (first few):", phased.pruned.len());
    for p in phased.pruned.iter().take(5) {
        println!(
            "  {} dropped after phase {} (estimate {:.4})",
            p.spec, p.at_phase, p.estimate
        );
    }

    println!("\n{:<34} {:>10}", "", "ms");
    println!("{:<34} {exact_ms:>10.1}", "exact (all phases)");
    println!("{:<34} {phased_ms:>10.1}", "phased + CI pruning");
    println!(
        "{:<34} {parallel_ms:>10.1}",
        format!("phased-parallel ({workers} workers)")
    );

    println!("\ntop-5 (phased, exact utilities for survivors):");
    for (p, e) in phased.views.iter().zip(&exact.views) {
        println!(
            "  {:<22} phased {:.4}   exact {:.4}",
            p.spec.label(),
            p.utility,
            e.utility
        );
        assert_eq!(p.spec, e.spec, "phased top-k must match exact top-k");
        assert!((p.utility - e.utility).abs() < 1e-9);
    }

    // Worker count must be invisible in the outcome — to the bit.
    assert_eq!(phased.survivors_per_phase, parallel.survivors_per_phase);
    assert_eq!(phased.pruned.len(), parallel.pruned.len());
    for (a, b) in phased.survivors.iter().zip(&parallel.survivors) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }

    println!("\nphased top-k identical to exact top-k ✔");
    println!("phased-parallel ({workers} workers) bit-identical to sequential phased ✔");
}
