//! Quickstart: load a dataset, issue a query, see recommended views.
//!
//! Reproduces the Fig. 5 experience in the terminal: the query (issued
//! through all three frontend mechanisms), SeeDB's recommended
//! visualizations, and the pruning/optimization summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use seedb::core::{SeeDb, SeeDbConfig};
use seedb::memdb::{CmpOp, Database};
use seedb::viz::{Frontend, QueryBuilder, QueryTemplate};

fn main() {
    // Load the Store Orders demo dataset into the DBMS.
    let data = seedb::data::store_orders(20_000, 42);
    println!("dataset: {}\n", data.description);
    let db = Arc::new(Database::new());
    db.register(data.table);

    // Configure SeeDB: top-5 views plus 2 low-utility views for contrast.
    let mut config = SeeDbConfig::recommended().with_k(5);
    config.low_utility_views = 2;
    let frontend = Frontend::new(SeeDb::new(db, config));

    // Mechanism (a): raw SQL.
    let out = frontend
        .issue_sql(&data.query_sql)
        .expect("demo query runs");
    println!("{}", out.render_text());
    println!(
        "backend: {} candidate views, {} pruned, {} queries, {:.1?} total\n",
        out.recommendation.num_candidates,
        out.recommendation.pruned.len(),
        out.recommendation.num_queries,
        out.recommendation.timings.total(),
    );

    // Mechanism (b): the form-based query builder.
    let built = QueryBuilder::new("store_orders")
        .filter_eq("segment", "Home Office")
        .filter("discount", CmpOp::Ge, 0.2)
        .build();
    let out = frontend.issue(&built).expect("built query runs");
    println!(
        "query builder: {} -> top view: {} (utility {:.3})",
        built.to_sql(),
        out.visualizations[0].title,
        out.visualizations[0].metadata.utility
    );

    // Mechanism (c): the outlier template.
    let template = QueryTemplate::OutliersAbove {
        table: "store_orders".into(),
        measure: "sales".into(),
        sigmas: 2.0,
    };
    let out = frontend.issue_template(&template).expect("template runs");
    println!(
        "outlier template -> top view: {} (utility {:.3})",
        out.visualizations[0].title, out.visualizations[0].metadata.utility
    );

    // Export the winning view as Vega-Lite JSON.
    println!(
        "\nVega-Lite export of the #1 view:\n{}",
        serde_json_pretty(&out.visualizations[0].to_vega_lite())
    );
}

fn serde_json_pretty(v: &impl std::fmt::Debug) -> String {
    // The spec's Debug output is JSON-like; the spec also offers
    // `to_json()` — use Debug here to avoid pulling serde_json into the
    // example's signature.
    format!("{v:#?}")
        .lines()
        .take(20)
        .collect::<Vec<_>>()
        .join("\n")
}
