//! The SeeDB demo, in the terminal (paper §4, "Demo Walkthrough").
//!
//! Loads one of the four demo datasets, issues the suggested analyst
//! query (or yours), prints the recommended visualizations, and accepts
//! interactive commands to change knobs, drill down, and roll up —
//! Scenario 1 and Scenario 2 in one binary.
//!
//! ```sh
//! cargo run --release --bin seedb_demo -- --dataset election
//! cargo run --release --bin seedb_demo -- --dataset synthetic --rows 100000 --interactive
//! ```
//!
//! Interactive commands:
//! * any `SELECT * FROM <table> WHERE ...` — run a new analyst query
//! * `:k <n>` / `:metric <name>` / `:basic on|off` / `:sample <frac|off>`
//! * `:strategy sequential|parallel|phased|phased-parallel` — pick the
//!   execution strategy (§3.3 parallelism × early termination)
//! * `:workers <n>` — worker count for the current strategy
//! * `:sessions <n>` — replay the current query from `n` concurrent
//!   analyst sessions through the serving layer (shared
//!   partial-aggregate cache + scan batching + incremental refresh)
//!   and print cache stats; the service persists across `:sessions`
//!   and `:append` so refreshes are observable
//! * `:append <table> <n>` — live-ingest `n` synthetic delta rows
//!   (regenerated from the dataset's own generator) into `table`;
//!   cached partial aggregates refresh incrementally per the serving
//!   policy instead of recomputing, and the line reports whether the
//!   batch was WAL-logged (durable) or in-memory only
//! * `:save <dir>` — persist the database (segment files + manifest +
//!   WAL) into `dir` and keep serving durably from it; spills the
//!   cached plan set for warm restarts
//! * `:open <dir>` — replace the session's database with the one saved
//!   in `dir` (crash recovery included: the WAL tail is replayed) and
//!   warm-start the serving cache from the spilled plan set
//! * `:metrics` — dump the serving layer's full metrics snapshot
//!   (`service.*` cache/latency, `exec.*` scan work, `store.*` WAL and
//!   checkpoint activity) as sorted JSON
//! * `:watch <n>` — live telemetry dashboard: replay the current query
//!   once per sampling window for `n` windows and print each window's
//!   deltas (qps, recommend p50/p99, cache hit rate, WAL bytes pending)
//! * `:health` — the watchdog's verdict (HEALTHY/DEGRADED plus the
//!   retained breach log) and the active rule catalog
//! * `:explain [cold]` — EXPLAIN ANALYZE the current query through the
//!   serving layer: per-operator rows scanned/matched, partition
//!   fan-out, merge time, and cache probe outcome, reconciled against
//!   the `exec.*` cost counters; `cold` clears the cache first
//! * `:trace on|off` — toggle per-request trace recording; `on` replays
//!   the current query cold through one session and prints its span
//!   tree (recommend → optimize → execute → per-partition
//!   `execute_partial` → merge) with durations and attributes
//! * `:drill <view#> <label>` — narrow to one group of a recommended view
//! * `:up` — undo the last drill-down
//! * `:quit`

use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seedb::core::{
    default_workers, drill_down, roll_up, AnalystQuery, ExecutionStrategy, Metric, SeeDb,
    SeeDbConfig, Service, ServiceConfig,
};
use seedb::memdb::{Database, SampleSpec};
use seedb::viz::Frontend;

struct Args {
    dataset: String,
    rows: usize,
    seed: u64,
    k: usize,
    metric: Metric,
    basic: bool,
    sample: Option<f64>,
    interactive: bool,
    query: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: "store_orders".to_string(),
        rows: 20_000,
        seed: 42,
        k: 5,
        metric: Metric::EarthMovers,
        basic: false,
        sample: None,
        interactive: false,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--dataset" => args.dataset = value("--dataset")?,
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--k" => {
                args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?
            }
            "--metric" => {
                let name = value("--metric")?;
                args.metric = Metric::parse(&name)
                    .ok_or_else(|| format!("unknown metric {name}"))?;
            }
            "--basic" => args.basic = true,
            "--sample" => {
                args.sample = Some(
                    value("--sample")?
                        .parse()
                        .map_err(|e| format!("--sample: {e}"))?,
                )
            }
            "--interactive" | "-i" => args.interactive = true,
            "--query" => args.query = Some(value("--query")?),
            "--help" | "-h" => {
                return Err("usage: seedb_demo [--dataset store_orders|election|medical|synthetic] \
                            [--rows N] [--seed S] [--k K] [--metric emd|euclidean|l1|kl|js|chi2|hellinger|tv] \
                            [--basic] [--sample FRAC] [--query SQL] [--interactive]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn load(dataset: &str, rows: usize, seed: u64) -> Result<(Arc<Database>, String), String> {
    let db = Arc::new(Database::new());
    let (table, query) = match dataset {
        "store_orders" => {
            let d = seedb::data::store_orders(rows, seed);
            (d.table, d.query_sql)
        }
        "election" => {
            let d = seedb::data::election_contributions(rows, seed);
            (d.table, d.query_sql)
        }
        "medical" => {
            let d = seedb::data::medical(rows, seed);
            (d.table, d.query_sql)
        }
        "synthetic" => {
            let spec = seedb::data::SyntheticSpec::knobs(rows, 8, 10, 1.0, 3, seed).with_plant(
                seedb::data::Plant {
                    subset_dim: 0,
                    subset_value: 0,
                    deviating_dims: vec![1, 2],
                    deviating_measures: vec![(0, 30.0)],
                },
            );
            let sql = format!(
                "SELECT * FROM synthetic WHERE {}",
                spec.subset_filter()
                    .expect("plant defines a filter")
                    .to_sql()
            );
            (spec.generate(), sql)
        }
        other => return Err(format!("unknown dataset {other}")),
    };
    db.register(table);
    Ok((db, query))
}

fn build_config(args: &Args) -> SeeDbConfig {
    let mut cfg = if args.basic {
        SeeDbConfig::basic()
    } else {
        SeeDbConfig::recommended()
    };
    cfg = cfg.with_k(args.k).with_metric(args.metric);
    cfg.low_utility_views = 2;
    if let Some(f) = args.sample {
        cfg.optimizer.sample = Some(SampleSpec::Bernoulli {
            fraction: f,
            seed: 1,
        });
    }
    cfg
}

fn run_and_print(frontend: &Frontend, query: &AnalystQuery) -> Option<seedb::viz::FrontendOutput> {
    match frontend.issue(query) {
        Ok(out) => {
            println!("{}", out.render_text());
            let early = if out.recommendation.early_pruned.is_empty() {
                String::new()
            } else {
                format!(
                    " (+{} pruned mid-run)",
                    out.recommendation.early_pruned.len()
                )
            };
            println!(
                "[{} candidates, {} pruned{early}, {} queries, {:.1?}]",
                out.recommendation.num_candidates,
                out.recommendation.pruned.len(),
                out.recommendation.num_queries,
                out.recommendation.timings.total()
            );
            Some(out)
        }
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    }
}

/// Get (or lazily create) the persistent serving layer over the demo's
/// database. Persisting it across `:sessions` and `:append` is what
/// makes incremental cache maintenance observable: an `:append` after a
/// warm `:sessions` refreshes the residents instead of recomputing.
/// Config-changing commands drop it (`serving = None`) so it is rebuilt
/// with the current pipeline configuration.
fn serving_service(frontend: &Frontend, serving: &mut Option<Service>) -> Service {
    if let Some(s) = serving.as_ref() {
        return s.clone();
    }
    let engine = frontend.engine();
    // A long-lived service accumulates its own workload log; with the
    // demo replaying one query many times, access-frequency pruning
    // would eventually prune every view (nothing else is ever
    // accessed). Disable it so rounds stay comparable.
    let mut cfg = engine.config().clone();
    cfg.pruning.access_frequency = false;
    let service = Service::new(
        engine.database().clone(),
        ServiceConfig::recommended()
            .with_seedb(cfg)
            .with_batch_window(Duration::from_millis(5)),
    );
    *serving = Some(service.clone());
    service
}

/// Synthetic delta rows for `:append`: regenerate `n` rows from the
/// dataset's own generator (fresh seed per call) and lift them out —
/// schema-identical live-ingest traffic.
fn delta_rows(dataset: &str, n: usize, seed: u64) -> Result<Vec<Vec<seedb::memdb::Value>>, String> {
    let table = match dataset {
        "store_orders" => seedb::data::store_orders(n, seed).table,
        "election" => seedb::data::election_contributions(n, seed).table,
        "medical" => seedb::data::medical(n, seed).table,
        "synthetic" => seedb::data::SyntheticSpec::knobs(n, 8, 10, 1.0, 3, seed)
            .with_plant(seedb::data::Plant {
                subset_dim: 0,
                subset_value: 0,
                deviating_dims: vec![1, 2],
                deviating_measures: vec![(0, 30.0)],
            })
            .generate(),
        other => return Err(format!("unknown dataset {other}")),
    };
    Ok((0..table.num_rows()).map(|i| table.row(i)).collect())
}

/// Print the durable-store summary after `:save` / `:open`: tables with
/// versions and segment-file counts, plus the WAL backlog.
fn print_store_summary(db: &seedb::memdb::Database) {
    let Some(s) = db.durability_summary() else {
        println!("not durable (in-memory only)");
        return;
    };
    println!("store: {}", s.dir.display());
    for (name, version, rows, files) in &s.tables {
        println!("  table {name}: version {version}, {rows} rows, {files} segment file(s)");
    }
    println!(
        "  {} segment file(s) total | WAL: {} record(s), {} byte(s) pending checkpoint",
        s.segment_files, s.wal_records, s.wal_bytes
    );
    if let Some(w) = &s.wedged {
        println!("  WARNING: store wedged ({w}) — re-run :save to recover");
    }
    if let Some(e) = &s.last_checkpoint_error {
        println!("  WARNING: last checkpoint failed ({e}); retrying at next threshold");
    }
}

/// `:append <table> <n>` — live-ingest through the persistent service
/// so cached partial-aggregate states are maintained incrementally.
fn run_append(service: &Service, dataset: &str, table: &str, n: usize, seed: u64) {
    let rows = match delta_rows(dataset, n, seed) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("{e}");
            return;
        }
    };
    let before = service.cache_stats();
    match service.append_rows(table, rows) {
        Ok(t) => {
            println!(
                "appended {n} rows to {table}: {} rows, version {}, {} segments",
                t.num_rows(),
                t.version(),
                t.num_segments()
            );
            let s = service.cache_stats();
            let refreshed = s.refreshes - before.refreshes;
            if refreshed > 0 || s.refresh_fallbacks > before.refresh_fallbacks {
                println!(
                    "  cache: {refreshed} states refreshed eagerly ({} delta rows), {} fallbacks",
                    s.refresh_rows - before.refresh_rows,
                    s.refresh_fallbacks - before.refresh_fallbacks,
                );
            }
            match service.database().durability_summary() {
                Some(d) => println!(
                    "  WAL-logged ✔ ({} record(s), {} byte(s) pending checkpoint)",
                    d.wal_records, d.wal_bytes
                ),
                None => {
                    println!("  not WAL-logged (in-memory only; :save <dir> enables durability)")
                }
            }
        }
        Err(e) => eprintln!("append failed: {e}"),
    }
}

/// `:sessions n` — replay the current analyst query from `n` concurrent
/// sessions through the persistent [`Service`], twice: a first round
/// (misses/batched scans or — after an `:append` — incremental
/// refreshes) and a repeat round (cache hits, zero scans). Prints
/// per-round wall time, DBMS cost deltas, and cache stats including
/// incremental-refresh work (delta rows scanned vs full recomputes
/// avoided), and checks every session got the identical top-k.
fn run_sessions(service: &Service, query: &AnalystQuery, n: usize) {
    let db = service.database().clone();
    println!("serving layer: {n} concurrent sessions × 2 rounds");
    for round in ["first", "repeat"] {
        let stats_before = service.cache_stats();
        let cost_before = db.cost();
        let t0 = Instant::now();
        let mut top_ks: Vec<Vec<String>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let session = service.session();
                    s.spawn(move || {
                        session
                            .recommend(query)
                            .map(|rec| rec.views.iter().map(|v| v.spec.label()).collect::<Vec<_>>())
                    })
                })
                .collect();
            for h in handles {
                match h.join().expect("session thread panicked") {
                    Ok(top) => top_ks.push(top),
                    Err(e) => eprintln!("session error: {e}"),
                }
            }
        });
        let elapsed = t0.elapsed();
        let cost = db.cost().since(&cost_before);
        let s = service.cache_stats();
        println!(
            "round {round}: {elapsed:>8.1?}  scans {} rows {} | cache hits {} misses {} \
             batched-scans {} (serving {} plans) evictions {}",
            cost.table_scans,
            cost.rows_scanned,
            s.hits - stats_before.hits,
            s.misses - stats_before.misses,
            s.batch_scans - stats_before.batch_scans,
            s.batched_plans - stats_before.batched_plans,
            s.evictions - stats_before.evictions,
        );
        let refreshed = s.refreshes - stats_before.refreshes;
        if refreshed > 0 {
            println!(
                "  incremental refresh: {refreshed} states via {} delta rows \
                 ({} full recomputes avoided), {} fallbacks",
                s.refresh_rows - stats_before.refresh_rows,
                refreshed,
                s.refresh_fallbacks - stats_before.refresh_fallbacks,
            );
        }
        if top_ks.len() == n && top_ks.iter().all(|t| *t == top_ks[0]) {
            println!("  all {n} sessions agree on the top-k ✔");
        } else {
            eprintln!("  WARNING: sessions disagree or failed");
        }
    }
    let s = service.cache_stats();
    println!(
        "cache: {} states resident, hit rate {:.0}%",
        service.cache_len(),
        s.hit_rate() * 100.0
    );
}

/// `:watch <n>` — the live telemetry dashboard. Replays the current
/// query once per sampling window (so the table shows real traffic even
/// with no other sessions running), closes a window, and prints its
/// deltas: qps, windowed recommend p50/p99, cache hit rate, and WAL
/// bytes pending.
fn run_watch(service: &Service, query: &AnalystQuery, n: usize) {
    let interval = service
        .telemetry_interval()
        .unwrap_or(Duration::from_secs(1))
        .min(Duration::from_secs(1));
    println!(
        "{:>9}  {:>7}  {:>9}  {:>9}  {:>8}  {:>11}",
        "window_s", "qps", "p50_ms", "p99_ms", "hit_rate", "wal_pending"
    );
    let session = service.session();
    for _ in 0..n {
        let tick = Instant::now();
        if let Err(e) = session.recommend(query) {
            eprintln!("watch request failed: {e}");
            return;
        }
        if let Some(rest) = interval.checked_sub(tick.elapsed()) {
            std::thread::sleep(rest);
        }
        let Some(w) = service.sample_window() else {
            eprintln!("telemetry is disabled in the serving config");
            return;
        };
        let secs = w.duration_ns() as f64 / 1e9;
        let served = w
            .histograms
            .get("service.recommend_ns")
            .map_or(0, |h| h.count);
        let qps = if secs > 0.0 {
            served as f64 / secs
        } else {
            0.0
        };
        let hit_rate = w
            .ratio("service.cache.hits", "service.cache.misses")
            .map_or_else(|| "-".to_string(), |r| format!("{r:.2}"));
        println!(
            "{:>9.2}  {:>7.2}  {:>9.3}  {:>9.3}  {:>8}  {:>11}",
            w.end_ns as f64 / 1e9,
            qps,
            w.percentile("service.recommend_ns", 0.50) as f64 / 1e6,
            w.percentile("service.recommend_ns", 0.99) as f64 / 1e6,
            hit_rate,
            w.gauge("store.wal.bytes_pending"),
        );
    }
    let health = service.health();
    if !health.healthy {
        println!("note: watchdog is DEGRADED — see :health");
    }
}

/// `:health` — watchdog verdict, retained breach log, and the active
/// rule catalog.
fn print_health(service: &Service) {
    print!("{}", service.health().render());
    let rules = service.watchdog_rules();
    if rules.is_empty() {
        println!("telemetry disabled: no watchdog rules active");
    } else {
        println!("watchdog rules:");
        for rule in &rules {
            println!("  {rule}");
        }
    }
}

/// Printed whenever sampling and a phased strategy are configured
/// together: phased execution is exact and ignores the sample.
fn warn_sample_ignored(cfg: &SeeDbConfig) {
    if cfg.optimizer.sample.is_some()
        && matches!(
            cfg.execution,
            ExecutionStrategy::Phased { .. } | ExecutionStrategy::PhasedParallel { .. }
        )
    {
        println!(
            "note: phased strategies are exact and ignore :sample \
             (sampling stays configured for the batch strategies)"
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let (db, suggested) = match load(&args.dataset, args.rows, args.seed) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut frontend = Frontend::new(SeeDb::new(db, build_config(&args)));

    let first_sql = args.query.clone().unwrap_or(suggested);
    println!(
        "dataset: {} ({} rows)\nquery:   {first_sql}\n",
        args.dataset, args.rows
    );
    let mut current = match AnalystQuery::from_sql(&first_sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("bad query: {e}");
            std::process::exit(2);
        }
    };
    let mut last = run_and_print(&frontend, &current);

    if !args.interactive {
        return;
    }

    // The persistent serving layer behind `:sessions` / `:append`
    // (rebuilt lazily after config changes) and the rolling seed for
    // synthetic delta batches.
    let mut serving: Option<Service> = None;
    let mut append_seed = args.seed.wrapping_add(0x5eed);

    let stdin = std::io::stdin();
    loop {
        print!("seedb> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => break,
                Some("k") => {
                    if let Some(Ok(k)) = parts.next().map(str::parse) {
                        frontend.engine_mut().config_mut().k = k;
                        serving = None;
                        last = run_and_print(&frontend, &current);
                    } else {
                        eprintln!("usage: :k <n>");
                    }
                }
                Some("metric") => match parts.next().and_then(Metric::parse) {
                    Some(m) => {
                        frontend.engine_mut().config_mut().metric = m;
                        serving = None;
                        last = run_and_print(&frontend, &current);
                    }
                    None => eprintln!("metrics: emd euclidean l1 kl js chi2 hellinger tv"),
                },
                Some("basic") => {
                    let on = parts.next() == Some("on");
                    let cfg = frontend.engine_mut().config_mut();
                    if on {
                        cfg.optimizer = seedb::core::OptimizerConfig::basic();
                        cfg.pruning = seedb::core::PruningConfig::disabled();
                    } else {
                        cfg.optimizer = seedb::core::OptimizerConfig::all_optimizations();
                        cfg.pruning = seedb::core::PruningConfig::aggressive();
                    }
                    serving = None;
                    last = run_and_print(&frontend, &current);
                }
                Some("strategy") => {
                    let cfg = frontend.engine_mut().config_mut();
                    match parts
                        .next()
                        .map(|n| ExecutionStrategy::parse(n, default_workers()))
                    {
                        Some(Some(strategy)) => {
                            println!("strategy: {strategy}");
                            cfg.execution = strategy;
                            warn_sample_ignored(cfg);
                            serving = None;
                            last = run_and_print(&frontend, &current);
                        }
                        _ => eprintln!(
                            "usage: :strategy sequential|parallel|phased|phased-parallel \
                             (current: {})",
                            cfg.execution
                        ),
                    }
                }
                Some("workers") => {
                    let cfg = frontend.engine_mut().config_mut();
                    match parts.next().map(str::parse::<usize>) {
                        Some(Ok(n)) if n >= 1 => {
                            cfg.execution = cfg.execution.clone().with_workers(n);
                            println!("strategy: {}", cfg.execution);
                            serving = None;
                            last = run_and_print(&frontend, &current);
                        }
                        _ => eprintln!("usage: :workers <n ≥ 1> (current: {})", cfg.execution),
                    }
                }
                Some("sessions") => match parts.next().map(str::parse::<usize>) {
                    Some(Ok(n)) if (1..=64).contains(&n) => {
                        let service = serving_service(&frontend, &mut serving);
                        run_sessions(&service, &current, n);
                    }
                    _ => eprintln!("usage: :sessions <1..=64>"),
                },
                Some("append") => {
                    let table = parts.next().map(str::to_string);
                    let n = parts.next().and_then(|s| s.parse::<usize>().ok());
                    match (table, n) {
                        (Some(table), Some(n)) if n >= 1 => {
                            let service = serving_service(&frontend, &mut serving);
                            run_append(&service, &args.dataset, &table, n, append_seed);
                            append_seed = append_seed.wrapping_add(1);
                        }
                        _ => eprintln!("usage: :append <table> <n ≥ 1>"),
                    }
                }
                Some("save") => match parts.next() {
                    Some(dir) => {
                        let service = serving_service(&frontend, &mut serving);
                        match service.persist(dir) {
                            Ok(()) => {
                                println!(
                                    "saved ({} cached plan(s) spilled for warm restart)",
                                    service.cache_len()
                                );
                                print_store_summary(service.database());
                            }
                            Err(e) => eprintln!("save failed: {e}"),
                        }
                    }
                    None => eprintln!("usage: :save <dir>"),
                },
                Some("open") => match parts.next() {
                    Some(dir) => {
                        // Open with the session's current pipeline
                        // config (mirrors `serving_service`).
                        let mut cfg = frontend.engine().config().clone();
                        cfg.pruning.access_frequency = false;
                        let service_cfg = ServiceConfig::recommended()
                            .with_seedb(cfg.clone())
                            .with_batch_window(Duration::from_millis(5));
                        match Service::open(dir, service_cfg) {
                            Ok(service) => {
                                println!(
                                    "opened ({} state(s) warm in the cache)",
                                    service.cache_len()
                                );
                                print_store_summary(service.database());
                                frontend =
                                    Frontend::new(SeeDb::new(service.database().clone(), cfg));
                                serving = Some(service);
                                last = run_and_print(&frontend, &current);
                            }
                            Err(e) => eprintln!("open failed: {e}"),
                        }
                    }
                    None => eprintln!("usage: :open <dir>"),
                },
                Some("sample") => {
                    let cfg = frontend.engine_mut().config_mut();
                    match parts.next() {
                        Some("off") => cfg.optimizer.sample = None,
                        Some(f) => match f.parse::<f64>() {
                            Ok(frac) => {
                                cfg.optimizer.sample = Some(SampleSpec::Bernoulli {
                                    fraction: frac,
                                    seed: 1,
                                })
                            }
                            Err(e) => {
                                eprintln!("bad fraction: {e}");
                                continue;
                            }
                        },
                        None => {
                            eprintln!("usage: :sample <fraction|off>");
                            continue;
                        }
                    }
                    warn_sample_ignored(cfg);
                    serving = None;
                    last = run_and_print(&frontend, &current);
                }
                Some("metrics") => {
                    let service = serving_service(&frontend, &mut serving);
                    print!("{}", service.metrics().to_json());
                }
                Some("watch") => match parts.next().map(str::parse::<usize>) {
                    Some(Ok(n)) if (1..=120).contains(&n) => {
                        let service = serving_service(&frontend, &mut serving);
                        run_watch(&service, &current, n);
                    }
                    _ => eprintln!("usage: :watch <1..=120 windows>"),
                },
                Some("health") => {
                    let service = serving_service(&frontend, &mut serving);
                    print_health(&service);
                }
                Some("explain") => {
                    let cold = match parts.next() {
                        Some("cold") => true,
                        None => false,
                        Some(_) => {
                            eprintln!("usage: :explain [cold]");
                            continue;
                        }
                    };
                    let service = serving_service(&frontend, &mut serving);
                    if cold {
                        service.clear_cache();
                    }
                    match service.recommend_explained(&current) {
                        Ok((_, report)) => print!("{}", report.render()),
                        Err(e) => eprintln!("explain failed: {e}"),
                    }
                }
                Some("trace") => match parts.next() {
                    Some("on") => {
                        let service = serving_service(&frontend, &mut serving);
                        service.set_trace_enabled(true);
                        // Replay the current query cold so the tree
                        // shows the full pipeline, scans included.
                        service.clear_cache();
                        let session = service.session();
                        match session.recommend(&current) {
                            Ok(_) => match session.last_trace() {
                                Some(trace) => {
                                    println!("tracing on; cold request span tree:");
                                    print!("{}", trace.render());
                                }
                                None => println!("tracing on (no trace recorded)"),
                            },
                            Err(e) => eprintln!("traced request failed: {e}"),
                        }
                    }
                    Some("off") => {
                        let service = serving_service(&frontend, &mut serving);
                        service.set_trace_enabled(false);
                        println!("tracing off");
                    }
                    _ => eprintln!("usage: :trace on|off"),
                },
                Some("drill") => {
                    let idx: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                    let label: Vec<&str> = parts.collect();
                    match (idx, &last) {
                        (Some(i), Some(out)) if i >= 1 && i <= out.recommendation.views.len() => {
                            let view = &out.recommendation.views[i - 1];
                            let next = drill_down(&current, &view.spec, &label.join(" "));
                            println!("drilled: {}", next.to_sql());
                            current = next;
                            last = run_and_print(&frontend, &current);
                        }
                        _ => eprintln!("usage: :drill <view#> <group label>"),
                    }
                }
                Some("up") => match roll_up(&current) {
                    Ok(q) => {
                        println!("rolled up: {}", q.to_sql());
                        current = q;
                        last = run_and_print(&frontend, &current);
                    }
                    Err(e) => eprintln!("{e}"),
                },
                _ => eprintln!(
                    "commands: :k :metric :basic :sample :strategy :workers :sessions :append \
                     :save :open :metrics :watch :health :explain :trace :drill :up :quit"
                ),
            }
            continue;
        }
        // A SQL query.
        match AnalystQuery::from_sql(line) {
            Ok(q) => {
                current = q;
                last = run_and_print(&frontend, &current);
            }
            Err(e) => eprintln!("parse error: {e}"),
        }
    }
}
