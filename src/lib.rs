//! # seedb — SeeDB: Automatically Generating Query Visualizations
//!
//! A complete Rust reproduction of the VLDB 2014 system by Vartak,
//! Madden, Parameswaran, and Polyzotis. This facade crate re-exports the
//! whole workspace:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`memdb`] | the in-memory columnar DBMS SeeDB wraps (from scratch) |
//! | [`core`](mod@crate::core) | the SeeDB backend: view enumeration, pruning, query-combining optimizer, deviation scoring, top-k |
//! | [`viz`](mod@crate::viz) | the frontend: query builder/templates, chart selection, visualization specs |
//! | [`data`](mod@crate::data) | demo datasets (Store Orders / Election / Medical analogues) and synthetic generators |
//! | [`obs`](mod@crate::obs) | observability: metrics registry, per-request trace spans, injectable clock |
//!
//! ## Five-minute tour
//!
//! ```
//! use std::sync::Arc;
//! use seedb::memdb::Database;
//! use seedb::core::{SeeDb, SeeDbConfig};
//! use seedb::viz::Frontend;
//!
//! // 1. Load a dataset into the DBMS substrate.
//! let data = seedb::data::store_orders(5_000, 42);
//! let query = data.query_sql.clone();
//! let db = Arc::new(Database::new());
//! db.register(data.table);
//!
//! // 2. Wrap it with SeeDB and a frontend.
//! let frontend = Frontend::new(SeeDb::new(db, SeeDbConfig::recommended().with_k(3)));
//!
//! // 3. Issue the analyst query; get the most interesting views back.
//! let out = frontend.issue_sql(&query).unwrap();
//! for spec in &out.visualizations {
//!     println!("{} (utility {:.3})", spec.title, spec.metadata.utility);
//! }
//! assert_eq!(out.visualizations.len(), 3);
//! ```

pub use memdb;
pub use seedb_core as core;
pub use seedb_data as data;
pub use seedb_obs as obs;
pub use seedb_viz as viz;

pub use seedb_core::{
    AnalystQuery, CacheStats, Metric, Recommendation, SeeDb, SeeDbConfig, Service, ServiceConfig,
    Session, ViewResult,
};
pub use seedb_viz::{Frontend, QueryBuilder, QueryTemplate, VisualizationSpec};
