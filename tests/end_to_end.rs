//! Integration test: the full pipeline over the three demo-dataset
//! analogues (Scenario 1), checking that planted ground truth surfaces
//! and that the optimizer/pruning machinery behaves across crates.

use std::sync::Arc;

use seedb::core::{PruningConfig, SeeDb, SeeDbConfig};
use seedb::memdb::Database;
use seedb::viz::Frontend;

fn recall(truth: &[String], dims: &[String]) -> f64 {
    truth.iter().filter(|t| dims.contains(t)).count() as f64 / truth.len() as f64
}

fn run_dataset(data: seedb::data::Dataset, k: usize) -> (Vec<String>, seedb::Recommendation) {
    let truth = data.ground_truth.clone();
    let sql = data.query_sql.clone();
    let db = Arc::new(Database::new());
    db.register(data.table);
    let seedb = SeeDb::new(db, SeeDbConfig::recommended().with_k(k));
    let rec = seedb.recommend_sql(&sql).unwrap();
    assert!(rec.errors.is_empty(), "{:?}", rec.errors);
    let mut sorted = rec.all.clone();
    sorted.sort_by(|a, b| b.utility.partial_cmp(&a.utility).unwrap());
    let mut dims: Vec<String> = Vec::new();
    for v in &sorted {
        if !dims.contains(&v.spec.dimension) {
            dims.push(v.spec.dimension.clone());
        }
    }
    dims.truncate(4);
    let r = recall(&truth, &dims);
    assert!(
        r >= 0.5,
        "dataset {}: recall {r} (top dims {dims:?}, truth {truth:?})",
        rec.num_candidates
    );
    (truth, rec)
}

#[test]
fn store_orders_recovers_planted_trends() {
    let (_, rec) = run_dataset(seedb::data::store_orders(20_000, 11), 8);
    // Correlation pruning should have clustered state with region.
    assert!(
        rec.clusters
            .iter()
            .any(|c| c.contains(&"state".to_string()) && c.contains(&"region".to_string())),
        "state/region cluster expected, got {:?}",
        rec.clusters
    );
}

#[test]
fn election_recovers_planted_trends() {
    let (_, rec) = run_dataset(seedb::data::election_contributions(20_000, 12), 8);
    // candidate is the filter attribute: excluded from the view space.
    assert!(rec.all.iter().all(|v| v.spec.dimension != "candidate"));
}

#[test]
fn medical_recovers_planted_trends() {
    run_dataset(seedb::data::medical(20_000, 13), 8);
}

#[test]
fn optimizations_do_not_change_scores_on_real_schemas() {
    let data = seedb::data::store_orders(8_000, 21);
    let sql = data.query_sql.clone();
    let db = Arc::new(Database::new());
    db.register(data.table);

    let mut basic_cfg = SeeDbConfig::basic();
    basic_cfg.pruning = PruningConfig::disabled();
    let basic = SeeDb::new(db.clone(), basic_cfg)
        .recommend_sql(&sql)
        .unwrap();

    let mut opt_cfg = SeeDbConfig::recommended();
    opt_cfg.pruning = PruningConfig::disabled();
    let opt = SeeDb::new(db, opt_cfg).recommend_sql(&sql).unwrap();

    assert_eq!(basic.all.len(), opt.all.len());
    for (a, b) in basic.all.iter().zip(&opt.all) {
        assert_eq!(a.spec, b.spec);
        assert!(
            (a.utility - b.utility).abs() < 1e-9,
            "{}: {} vs {}",
            a.spec,
            a.utility,
            b.utility
        );
    }
    // And the optimized run does dramatically less DBMS work.
    assert!(opt.num_queries * 3 <= basic.num_queries);
    assert!(opt.cost.rows_scanned * 2 <= basic.cost.rows_scanned);
}

#[test]
fn frontend_renders_all_datasets() {
    for data in [
        seedb::data::store_orders(3_000, 1),
        seedb::data::election_contributions(3_000, 1),
        seedb::data::medical(3_000, 1),
    ] {
        let sql = data.query_sql.clone();
        let db = Arc::new(Database::new());
        db.register(data.table);
        let mut cfg = SeeDbConfig::recommended().with_k(3);
        cfg.low_utility_views = 1;
        let frontend = Frontend::new(SeeDb::new(db, cfg));
        let out = frontend.issue_sql(&sql).unwrap();
        assert_eq!(out.visualizations.len(), 3);
        let text = out.render_text();
        assert!(text.contains('█'));
        // Specs serialize to valid JSON and Vega-Lite.
        for spec in &out.visualizations {
            let json: serde_json::Value = serde_json::from_str(&spec.to_json()).unwrap();
            assert!(json["metadata"]["utility"].is_number());
            let vl = spec.to_vega_lite();
            assert!(vl["data"]["values"].as_array().is_some());
        }
    }
}

#[test]
fn workload_accumulation_enables_access_pruning() {
    let data = seedb::data::store_orders(5_000, 31);
    let sql = data.query_sql.clone();
    let db = Arc::new(Database::new());
    db.register(data.table);
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.pruning.min_workload_queries = 5;
    cfg.pruning.min_access_fraction = 0.5;
    let seedb = SeeDb::new(db, cfg);
    // Simulate a session: the analyst keeps querying product and sales.
    for _ in 0..10 {
        seedb
            .tracker()
            .record("store_orders", ["product", "sales", "region"]);
    }
    let rec = seedb.recommend_sql(&sql).unwrap();
    // Attributes outside the hot set get pruned by access frequency.
    assert!(rec
        .pruned
        .iter()
        .any(|p| matches!(p.reason, seedb::core::PruneReason::RarelyAccessed { .. })));
    // The hot dimension survives.
    assert!(rec.all.iter().any(|v| v.spec.dimension == "region"));
}

#[test]
fn binned_numeric_column_flows_through_the_pipeline() {
    use seedb::memdb::{with_binned_column, BinStrategy};
    // Medical data: bin the heart_rate measure into an ordinal dimension
    // and let SeeDB group on it (paper §1: "binning, grouping, and
    // aggregation").
    let data = seedb::data::medical(10_000, 3);
    let (binned, binning) = with_binned_column(
        &data.table,
        "heart_rate",
        BinStrategy::EqualDepth { bins: 6 },
    )
    .unwrap();
    assert!(binning.num_bins() <= 6);
    let db = Arc::new(Database::new());
    db.register(binned);
    let seedb = SeeDb::new(db, SeeDbConfig::recommended().with_k(10));
    let rec = seedb.recommend_sql(&data.query_sql).unwrap();
    // Cardiac admissions have elevated heart rate, so the derived
    // heart_rate_bin dimension deviates and appears among the views.
    let bin_view = rec
        .all
        .iter()
        .find(|v| v.spec.dimension == "heart_rate_bin")
        .expect("binned dimension becomes a candidate view");
    assert!(bin_view.utility > 0.05, "got {}", bin_view.utility);
    // Its labels sort in bucket order, so EMD sees the right geometry.
    let labels = &bin_view.aligned.labels;
    let mut sorted = labels.clone();
    sorted.sort();
    assert_eq!(&sorted, labels);
}
