//! Integration test: the paper's §1/§2 worked example, numbers included.
//!
//! Table 1 gives Laserwave sales per store and §2 gives the exact
//! normalization (180.55/538.18, ...). Figures 1–3 define the two
//! scenarios: comparison opposite (interesting) vs comparison similar
//! (boring). This test pins all of it end to end through the public API.

use std::sync::Arc;

use seedb::core::{AnalystQuery, FunctionSet, Metric, SeeDb, SeeDbConfig};
use seedb::memdb::{
    AggFunc, AggSpec, ColumnDef, DataType, Database, Expr, Query, Schema, Table, Value,
};

const LASERWAVE: [(&str, f64); 4] = [
    ("Cambridge, MA", 180.55),
    ("Seattle, WA", 145.50),
    ("New York, NY", 122.00),
    ("San Francisco, CA", 90.13),
];

fn sales_table(name: &str, background: &[(&str, f64)]) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::dimension("store", DataType::Str),
        ColumnDef::dimension("product", DataType::Str),
        ColumnDef::measure("amount", DataType::Float64),
    ])
    .unwrap();
    let mut t = Table::new(name, schema);
    for (store, total) in LASERWAVE {
        t.push_row(vec![store.into(), "Laserwave".into(), Value::Float(total)])
            .unwrap();
    }
    for &(store, total) in background {
        t.push_row(vec![store.into(), "Other".into(), Value::Float(total)])
            .unwrap();
    }
    t
}

#[test]
fn table_1_numbers_reproduce() {
    let db = Database::new();
    db.register(sales_table("sales", &[]));
    let q = Query::aggregate(
        "sales",
        vec!["store"],
        vec![AggSpec::new(AggFunc::Sum, "amount")],
    )
    .with_filter(Expr::col("product").eq("Laserwave"));
    let out = db.run(&q).unwrap();
    assert_eq!(out.result.num_rows(), 4);
    // Sorted by store label.
    let get = |store: &str| {
        out.result
            .rows
            .iter()
            .find(|r| r[0] == Value::from(store))
            .map(|r| r[1].as_f64().unwrap())
            .unwrap()
    };
    assert!((get("Cambridge, MA") - 180.55).abs() < 1e-9);
    assert!((get("Seattle, WA") - 145.50).abs() < 1e-9);
    assert!((get("New York, NY") - 122.00).abs() < 1e-9);
    assert!((get("San Francisco, CA") - 90.13).abs() < 1e-9);
}

#[test]
fn section_2_normalization_matches() {
    // "the probability distribution of Vi(DQ) is: (Jan: 180.55/538.18, ...)"
    // — same arithmetic, our store labels.
    let d = seedb::core::Distribution::from_pairs(
        LASERWAVE
            .iter()
            .map(|(s, v)| (s.to_string(), Some(*v)))
            .collect(),
    );
    let total = 538.18;
    assert!((d.prob("Cambridge, MA") - 180.55 / total).abs() < 1e-9);
    assert!((d.prob("Seattle, WA") - 145.50 / total).abs() < 1e-9);
    assert!((d.prob("New York, NY") - 122.00 / total).abs() < 1e-9);
    assert!((d.prob("San Francisco, CA") - 90.13 / total).abs() < 1e-9);
    assert!((d.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn scenario_a_interesting_scenario_b_not() {
    // Scenario A (Fig. 2): overall sales dominated by Seattle/SF — the
    // opposite of Laserwave's Cambridge-heavy distribution.
    let scenario_a = [
        ("Cambridge, MA", 1_819.45),
        ("New York, NY", 19_878.0),
        ("San Francisco, CA", 36_909.87),
        ("Seattle, WA", 38_854.5),
    ];
    // Scenario B (Fig. 3): overall sales proportional to Laserwave's.
    let scenario_b = [
        ("Cambridge, MA", 18_055.0),
        ("Seattle, WA", 14_550.0),
        ("New York, NY", 12_200.0),
        ("San Francisco, CA", 9_013.0),
    ];
    let db = Arc::new(Database::new());
    db.register(sales_table("sales_a", &scenario_a));
    db.register(sales_table("sales_b", &scenario_b));

    let utility = |table: &str| {
        let seedb = SeeDb::new(
            db.clone(),
            SeeDbConfig::recommended()
                .with_k(1)
                .with_functions(FunctionSet::sum_only()),
        );
        let rec = seedb
            .recommend(&AnalystQuery::new(
                table,
                Some(Expr::col("product").eq("Laserwave")),
            ))
            .unwrap();
        assert_eq!(rec.views[0].spec.label(), "SUM(amount) BY store");
        rec.views[0].utility
    };

    let a = utility("sales_a");
    let b = utility("sales_b");
    assert!(a > 0.3, "scenario A should deviate strongly, got {a}");
    // Scenario B backgrounds are exactly 100x the Laserwave values plus
    // the Laserwave rows themselves: distributions nearly identical.
    assert!(b < 0.01, "scenario B should be boring, got {b}");
    assert!(a > 30.0 * b);
}

#[test]
fn every_metric_agrees_on_the_scenarios() {
    let scenario_a = [
        ("Cambridge, MA", 1_819.45),
        ("New York, NY", 19_878.0),
        ("San Francisco, CA", 36_909.87),
        ("Seattle, WA", 38_854.5),
    ];
    let scenario_b = [
        ("Cambridge, MA", 18_055.0),
        ("Seattle, WA", 14_550.0),
        ("New York, NY", 12_200.0),
        ("San Francisco, CA", 9_013.0),
    ];
    let db = Arc::new(Database::new());
    db.register(sales_table("sales_a", &scenario_a));
    db.register(sales_table("sales_b", &scenario_b));
    for metric in Metric::all() {
        let u = |table: &str| {
            SeeDb::new(
                db.clone(),
                SeeDbConfig::recommended()
                    .with_k(1)
                    .with_metric(metric)
                    .with_functions(FunctionSet::sum_only()),
            )
            .recommend(&AnalystQuery::new(
                table,
                Some(Expr::col("product").eq("Laserwave")),
            ))
            .unwrap()
            .views[0]
                .utility
        };
        assert!(
            u("sales_a") > u("sales_b"),
            "{metric}: scenario A must beat scenario B"
        );
    }
}
