//! Durability and crash-recovery integration tests: the save/open
//! round trip at the serving layer, WAL no-loss guarantees, and the
//! crash-point matrix (torn WAL tail, torn manifest temp file,
//! checksum-corrupted segment/manifest/warm-plan files → typed
//! [`DbError::Corrupt`], never a panic or a silently wrong answer).

use std::path::PathBuf;
use std::sync::Arc;

use seedb::core::{AnalystQuery, SeeDbConfig, Service, ServiceConfig};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{
    store, AggFunc, AggSpec, Database, DbError, DurabilityConfig, LogicalPlan, Value,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "seedb-persistence-it-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded_db(rows: usize, seed: u64) -> (Arc<Database>, AnalystQuery) {
    let spec = SyntheticSpec::knobs(rows, 4, 6, 1.0, 2, seed).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1],
        deviating_measures: vec![],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    (db, analyst)
}

fn delta(rows: usize, seed: u64) -> Vec<Vec<Value>> {
    let t = SyntheticSpec::knobs(rows, 4, 6, 1.0, 2, seed).generate();
    (0..rows).map(|i| t.row(i)).collect()
}

fn pipeline() -> SeeDbConfig {
    let mut cfg = SeeDbConfig::recommended().with_k(4);
    cfg.pruning.access_frequency = false;
    cfg
}

fn service_config() -> ServiceConfig {
    ServiceConfig::recommended().with_seedb(pipeline())
}

/// A database saved, reopened, and appended-to serves recommendations
/// byte-identical to the never-restarted in-memory run (the PR's
/// acceptance criterion, at the serving layer).
#[test]
fn reopened_service_serves_byte_identical_recommendations() {
    let dir = tmp("service-roundtrip");
    let (db, analyst) = seeded_db(3_000, 17);
    let live = Service::new(db.clone(), service_config());
    live.recommend(&analyst).expect("warm-up");
    live.persist(&dir).expect("persist");
    // Acknowledged ingest after the checkpoint: lives only in the WAL.
    live.append_rows("synthetic", delta(50, 400))
        .expect("append");
    let truth = live.recommend(&analyst).expect("live serve");

    let reopened = Service::open(&dir, service_config()).expect("open");
    // Warm start: the spilled plan set was re-executed at open against
    // the WAL-recovered table, so this request performs zero scans.
    let cost_before = reopened.database().cost();
    let rec = reopened.recommend(&analyst).expect("post-restart serve");
    assert_eq!(
        reopened.database().cost().since(&cost_before).table_scans,
        0,
        "first post-restart request must be warm"
    );
    assert_eq!(truth.all.len(), rec.all.len());
    for (a, b) in truth.all.iter().zip(&rec.all) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "{}", a.spec);
    }

    // Appending to the reopened service stays identical to appending
    // to the never-restarted one — lineage survived the restart, so
    // the refresh is delta-only on both sides.
    let rows = delta(60, 401);
    live.append_rows("synthetic", rows.clone())
        .expect("live append");
    reopened
        .append_rows("synthetic", rows)
        .expect("reopened append");
    let a = live.recommend(&analyst).expect("live");
    let b = reopened.recommend(&analyst).expect("reopened");
    for (x, y) in a.all.iter().zip(&b.all) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.utility.to_bits(), y.utility.to_bits(), "{}", x.spec);
    }
    let stats = reopened.cache_stats();
    assert!(stats.refreshes >= 1, "refresh path exercised");
    assert_eq!(stats.refresh_fallbacks, 0, "no full recomputes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-persisting into the directory the service is already durable in
/// is an incremental checkpoint, not a full rewrite: unchanged tables
/// keep their chunk files, appends seal as delta chunks, and reopening
/// still serves the full state.
#[test]
fn repeated_persist_is_incremental_not_a_rewrite() {
    let dir = tmp("repersist");
    let (db, analyst) = seeded_db(2_000, 61);
    let service = Service::new(db.clone(), service_config());
    service.recommend(&analyst).expect("warm-up");
    service.persist(&dir).expect("first persist");
    let first = seedb::memdb::store::manifest::Manifest::read(&dir).unwrap();

    service
        .append_rows("synthetic", delta(40, 700))
        .expect("append");
    service.persist(&dir).expect("second persist");
    let second = seedb::memdb::store::manifest::Manifest::read(&dir).unwrap();

    // The base chunk file survived untouched; only a delta chunk was
    // added — and the second persist sealed the WAL.
    let base_chunks = &first.tables[0].chunks;
    let new_chunks = &second.tables[0].chunks;
    assert_eq!(new_chunks[0], base_chunks[0], "base chunk reused");
    assert_eq!(new_chunks.len(), base_chunks.len() + 1, "one delta chunk");
    assert_eq!(second.wal_epoch, first.wal_epoch, "same incarnation");
    assert_eq!(db.durability_summary().unwrap().wal_records, 0);

    let reopened = Service::open(&dir, service_config()).expect("open");
    let a = service.recommend(&analyst).unwrap();
    let b = reopened.recommend(&analyst).unwrap();
    for (x, y) in a.all.iter().zip(&b.all) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.utility.to_bits(), y.utility.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL replay after a simulated crash loses no acknowledged batch —
/// even when a *later* write was torn mid-record.
#[test]
fn torn_wal_tail_loses_only_the_unacknowledged_record() {
    let dir = tmp("torn-wal");
    let (db, _) = seeded_db(500, 23);
    db.save(&dir).unwrap();
    db.append_rows("synthetic", delta(10, 500)).unwrap();
    db.append_rows("synthetic", delta(10, 501)).unwrap();
    let acked = db.table("synthetic").unwrap();
    drop(db);

    // Simulate a crash mid-write of a third batch: append a prefix of
    // a valid record frame (length header promising more bytes than
    // exist) to the WAL.
    let wal_path = dir.join(store::wal::Wal::FILE_NAME);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&1_000u64.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 30]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let recovered = Database::open(&dir).unwrap();
    let t = recovered.table("synthetic").unwrap();
    assert_eq!(
        t.num_rows(),
        acked.num_rows(),
        "both acked batches restored"
    );
    assert_eq!(t.version(), acked.version());
    for i in 0..t.num_rows() {
        assert_eq!(t.row(i), acked.row(i));
    }
    // The store stays fully usable: the torn tail was truncated, so
    // new appends land on a clean record boundary and survive another
    // restart.
    recovered.append_rows("synthetic", delta(5, 502)).unwrap();
    let after = recovered.table("synthetic").unwrap();
    drop(recovered);
    let again = Database::open(&dir).unwrap();
    assert_eq!(
        again.table("synthetic").unwrap().num_rows(),
        after.num_rows()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash during checkpoint leaves `MANIFEST.tmp` behind; recovery
/// ignores it and serves the last *published* manifest plus the WAL.
#[test]
fn torn_manifest_temp_file_is_ignored() {
    let dir = tmp("torn-manifest");
    let (db, _) = seeded_db(500, 29);
    db.save(&dir).unwrap();
    db.append_rows("synthetic", delta(10, 510)).unwrap();
    let acked = db.table("synthetic").unwrap();
    drop(db);

    std::fs::write(dir.join("MANIFEST.tmp"), b"torn half-written manifest").unwrap();
    let recovered = Database::open(&dir).unwrap();
    let t = recovered.table("synthetic").unwrap();
    assert_eq!(t.num_rows(), acked.num_rows());
    assert_eq!(t.version(), acked.version());
    assert!(
        !dir.join("MANIFEST.tmp").exists(),
        "crash artifact cleaned up"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every checksum-corruption crash point surfaces as a typed
/// `DbError::Corrupt` — never a panic, never a silently wrong answer.
#[test]
fn corruption_is_always_a_typed_error() {
    // Segment file.
    let dir = tmp("corrupt-seg");
    let (db, _) = seeded_db(500, 31);
    db.save(&dir).unwrap();
    drop(db);
    let seg = std::fs::read_dir(dir.join("segments"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();
    assert!(matches!(Database::open(&dir), Err(DbError::Corrupt(_))));
    let _ = std::fs::remove_dir_all(&dir);

    // Manifest.
    let dir = tmp("corrupt-manifest");
    let (db, _) = seeded_db(500, 37);
    db.save(&dir).unwrap();
    drop(db);
    let path = dir.join("MANIFEST");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(Database::open(&dir), Err(DbError::Corrupt(_))));
    let _ = std::fs::remove_dir_all(&dir);

    // Mid-WAL corruption (valid records after a broken one cannot be a
    // torn tail — dropping them would lose acknowledged batches).
    let dir = tmp("corrupt-wal");
    let (db, _) = seeded_db(500, 41);
    db.save(&dir).unwrap();
    db.append_rows("synthetic", delta(10, 520)).unwrap();
    db.append_rows("synthetic", delta(10, 521)).unwrap();
    drop(db);
    let wal_path = dir.join(store::wal::Wal::FILE_NAME);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[20] ^= 0xFF; // inside the first record's payload
    std::fs::write(&wal_path, &bytes).unwrap();
    assert!(matches!(Database::open(&dir), Err(DbError::Corrupt(_))));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm-plan spill: typed Corrupt at the store layer, but the spill
    // holds only cache hints — Service::open degrades to a cold start
    // instead of failing.
    let dir = tmp("corrupt-plans");
    let (db, analyst) = seeded_db(500, 43);
    let service = Service::new(db, service_config());
    let truth = service.recommend(&analyst).unwrap();
    service.persist(&dir).unwrap();
    let path = dir.join(store::WARM_PLANS_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(store::read_plans(&path), Err(DbError::Corrupt(_))));
    let reopened = Service::open(&dir, service_config()).expect("best-effort warm start");
    let cost_before = reopened.database().cost();
    let rec = reopened.recommend(&analyst).expect("cold serve");
    assert!(
        reopened.database().cost().since(&cost_before).table_scans > 0,
        "cold start: the corrupted spill warmed nothing"
    );
    assert_eq!(truth.all.len(), rec.all.len());
    for (a, b) in truth.all.iter().zip(&rec.all) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full mutation history survives a restart: registrations
/// checkpoint directly into the manifest, appends and drops replay
/// from the WAL tail, and an explicit checkpoint seals it all into
/// segment files that reload alone.
#[test]
fn mixed_mutation_history_survives_restart() {
    let dir = tmp("mixed");
    let (db, _) = seeded_db(300, 47);
    db.save(&dir).unwrap();

    // register a second table, append to both, drop the first.
    let extra = SyntheticSpec::knobs(100, 3, 4, 1.0, 1, 99).generate();
    let mut t = seedb::memdb::Table::new("extra", extra.schema().clone());
    for i in 0..extra.num_rows() {
        t.push_row(extra.row(i)).unwrap();
    }
    db.register(t);
    db.append_rows("extra", {
        let g = SyntheticSpec::knobs(20, 3, 4, 1.0, 1, 98).generate();
        (0..20).map(|i| g.row(i)).collect()
    })
    .unwrap();
    db.append_rows("synthetic", delta(15, 530)).unwrap();
    db.drop_table("synthetic").unwrap();
    let extra_live = db.table("extra").unwrap();
    let version = db.version();
    drop(db);

    let recovered = Database::open(&dir).unwrap();
    assert_eq!(recovered.version(), version);
    assert!(matches!(
        recovered.table("synthetic"),
        Err(DbError::UnknownTable(_))
    ));
    let t = recovered.table("extra").unwrap();
    assert_eq!(t.num_rows(), extra_live.num_rows());
    assert_eq!(t.version(), extra_live.version());
    assert_eq!(t.lineage(), extra_live.lineage());
    for i in 0..t.num_rows() {
        assert_eq!(t.row(i), extra_live.row(i));
    }

    // Checkpoint everything and reopen once more: now the state loads
    // from segment files alone (empty WAL).
    recovered.checkpoint().unwrap();
    let summary = recovered.durability_summary().unwrap();
    assert_eq!(summary.wal_records, 0);
    drop(recovered);
    let again = Database::open(&dir).unwrap();
    assert_eq!(again.version(), version);
    assert_eq!(
        again.table("extra").unwrap().num_rows(),
        extra_live.num_rows()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Query results over a reopened catalog are bit-identical, including
/// plans with per-aggregate predicates and grouping sets — and cost
/// accounting still works (scans are charged to the reopened catalog).
#[test]
fn reopened_catalog_answers_queries_bit_identically() {
    let dir = tmp("queries");
    let (db, analyst) = seeded_db(2_000, 53);
    db.append_rows("synthetic", delta(100, 540)).unwrap();
    db.save(&dir).unwrap();
    let filter = analyst.filter.clone().expect("planted filter");
    let plans = [
        LogicalPlan::scan("synthetic").aggregate(
            vec!["d1".into()],
            vec![
                AggSpec::new(AggFunc::Sum, "m0")
                    .with_filter(filter.clone())
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "m0").with_alias("comparison"),
                AggSpec::new(AggFunc::Avg, "m1"),
                AggSpec::count_star(),
            ],
        ),
        LogicalPlan::scan("synthetic").grouping_sets(
            vec![vec!["d0".into()], vec!["d2".into()], vec![]],
            vec![
                AggSpec::new(AggFunc::Min, "m0"),
                AggSpec::new(AggFunc::Max, "m0"),
            ],
        ),
    ];
    let reopened = Database::open(&dir).unwrap();
    for plan in &plans {
        let a = db.execute_plan(plan).unwrap();
        let b = reopened.execute_plan(plan).unwrap();
        assert_eq!(a.num_result_sets(), b.num_result_sets());
        for s in 0..a.num_result_sets() {
            let (ra, rb) = (a.result_set(s).unwrap(), b.result_set(s).unwrap());
            assert_eq!(ra.columns, rb.columns);
            assert_eq!(ra.rows.len(), rb.rows.len());
            for (x, y) in ra.rows.iter().zip(&rb.rows) {
                for (va, vb) in x.iter().zip(y) {
                    match (va, vb) {
                        (Value::Float(f), Value::Float(g)) => {
                            assert_eq!(f.to_bits(), g.to_bits())
                        }
                        _ => assert_eq!(va, vb),
                    }
                }
            }
        }
    }
    assert!(reopened.cost().rows_scanned > 0, "cost accounting intact");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint threshold knob works end-to-end: appends below it
/// accumulate in the WAL; crossing it seals delta chunks and truncates.
#[test]
fn checkpoint_threshold_drives_wal_lifecycle() {
    let dir = tmp("threshold");
    let (db, _) = seeded_db(400, 59);
    db.save_with(
        &dir,
        DurabilityConfig::recommended()
            .with_wal_checkpoint_bytes(8 * 1024)
            .with_sync_writes(false),
    )
    .unwrap();
    let mut sealed = false;
    for i in 0..40 {
        db.append_rows("synthetic", delta(5, 600 + i)).unwrap();
        let s = db.durability_summary().unwrap();
        assert!(s.wedged.is_none());
        if s.wal_records == 0 && i > 0 {
            sealed = true; // a checkpoint ran and truncated the WAL
        }
    }
    assert!(sealed, "threshold must have triggered checkpoints");
    let live = db.table("synthetic").unwrap();
    drop(db);
    let recovered = Database::open(&dir).unwrap();
    let t = recovered.table("synthetic").unwrap();
    assert_eq!(t.num_rows(), live.num_rows());
    assert_eq!(t.version(), live.version());
    for i in 0..t.num_rows() {
        assert_eq!(t.row(i), live.row(i));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The soak harness's crash-injection hook
/// ([`Database::inject_torn_wal_tail`]) is indistinguishable from the
/// manual byte-munging above: identical WAL bytes after injection,
/// identical recovery (same rows, same version), and the recovered
/// store stays appendable.
#[test]
fn injected_torn_tail_matches_manual_byte_munging() {
    let setup = |name: &str| {
        let dir = tmp(name);
        let (db, _) = seeded_db(500, 23);
        db.save(&dir).unwrap();
        db.append_rows("synthetic", delta(10, 500)).unwrap();
        db.append_rows("synthetic", delta(10, 501)).unwrap();
        (dir, db)
    };

    // Manual flavor: the byte sequence `torn_wal_tail_loses_only_the_
    // unacknowledged_record` appends by hand.
    let (manual_dir, manual_db) = setup("parity-manual");
    drop(manual_db);
    let wal_path = manual_dir.join(store::wal::Wal::FILE_NAME);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&1_000u64.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 30]);
    std::fs::write(&wal_path, &bytes).unwrap();

    // Hook flavor: same starting state, tear injected through the API
    // while the database handle is still live (how the soak driver
    // crashes a serving store).
    let (hook_dir, hook_db) = setup("parity-hook");
    let torn_len = hook_db.inject_torn_wal_tail().unwrap();
    assert_eq!(torn_len, 38, "8-byte length header + 30 garbage bytes");
    drop(hook_db);

    let manual_bytes = std::fs::read(&wal_path).unwrap();
    let hook_bytes = std::fs::read(hook_dir.join(store::wal::Wal::FILE_NAME)).unwrap();
    assert_eq!(
        manual_bytes, hook_bytes,
        "hook must write the exact torn-tail byte pattern the manual test uses"
    );

    // Both flavors recover identically: acked batches intact, tear gone.
    let manual = Database::open(&manual_dir).unwrap();
    let hook = Database::open(&hook_dir).unwrap();
    let mt = manual.table("synthetic").unwrap();
    let ht = hook.table("synthetic").unwrap();
    assert_eq!(mt.num_rows(), ht.num_rows());
    assert_eq!(mt.version(), ht.version());
    for i in 0..mt.num_rows() {
        assert_eq!(mt.row(i), ht.row(i));
    }
    // And the hook-recovered store accepts new appends on a clean
    // record boundary, surviving another restart.
    hook.append_rows("synthetic", delta(5, 502)).unwrap();
    let after = hook.table("synthetic").unwrap();
    drop(hook);
    let again = Database::open(&hook_dir).unwrap();
    assert_eq!(
        again.table("synthetic").unwrap().num_rows(),
        after.num_rows()
    );
    let _ = std::fs::remove_dir_all(&manual_dir);
    let _ = std::fs::remove_dir_all(&hook_dir);
}

/// The hook refuses to tear a non-durable catalog instead of
/// panicking or silently doing nothing.
#[test]
fn injected_torn_tail_requires_a_durable_catalog() {
    let (db, _) = seeded_db(50, 31);
    let err = db.inject_torn_wal_tail().unwrap_err();
    assert!(
        matches!(err, DbError::Io(_)),
        "typed error, not a panic: {err:?}"
    );
}
