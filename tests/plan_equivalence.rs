//! Plan-lowering equivalence properties: on randomly generated synthetic
//! tables, every shared-scan rewrite the optimizer emits through the
//! logical plan layer must produce **byte-identical** `ViewResult`s to
//! naive one-query-per-view execution.
//!
//! Byte-identical is achievable (and asserted, via `f64::to_bits`) for
//! the three paper rewrites — combined target/comparison, combined
//! aggregates, and combined group-bys via grouping sets — because each
//! lowers onto a shared scan that visits rows in exactly the same order
//! as the naive queries. The multi-group-by roll-up mode re-associates
//! floating-point additions, so it is held to a 1e-9 tolerance instead.

use proptest::prelude::*;
use seedb::core::optimizer::plan;
use seedb::core::{
    enumerate_views, AnalystQuery, FunctionSet, GroupByCombining, MetadataCollector, Metric,
    OptimizerConfig, Processor, ViewResult,
};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{
    run_batch, run_partitioned, AggFunc, AggSpec, Database, Expr, LogicalPlan, PlanOutput, Table,
    Value,
};

/// Execute `views` under `cfg` through the full plan → lower → execute →
/// extract pipeline and score them.
fn run_views(db: &Database, analyst: &AnalystQuery, cfg: &OptimizerConfig) -> Vec<ViewResult> {
    let table = db.table(&analyst.table).unwrap();
    let views = enumerate_views(table.schema(), &FunctionSet::standard());
    let metadata = MetadataCollector::new().collect(&table, false).unwrap();
    let exec_plan = plan(&views, analyst, &metadata, cfg);
    let plans: Vec<LogicalPlan> = exec_plan.queries.iter().map(|q| q.plan.clone()).collect();
    let batch = run_batch(db, &plans, cfg.parallelism.max(1));
    let mut processor = Processor::new(views, Metric::EarthMovers);
    for (pq, out) in exec_plan.queries.iter().zip(batch.outputs) {
        processor.consume(pq, &out.expect("plan executes")).unwrap();
    }
    processor.finish()
}

/// Bitwise comparison of two scored views: utility, the full comparison
/// distribution, and the aligned target/comparison pair (exactly what
/// the deviation metric consumes) must match to the bit.
///
/// The *raw* target distribution is intentionally compared through the
/// aligned pair rather than by label set: a group with zero qualifying
/// target rows is absent from a naive standalone target query's output
/// but present with zero mass in a combined query's (its per-aggregate
/// predicate keeps the group alive via the comparison aggregate). Both
/// encode the same distribution, and their aligned probability vectors
/// are required to be bit-equal.
fn bitwise_eq(a: &ViewResult, b: &ViewResult) -> Result<(), String> {
    let ctx = |what: &str| format!("{}: {what} differs", a.spec);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if a.spec != b.spec {
        return Err("view specs differ".to_string());
    }
    if a.utility.to_bits() != b.utility.to_bits() {
        return Err(format!(
            "{}: utility {} vs {}",
            a.spec, a.utility, b.utility
        ));
    }
    // The comparison side runs over the whole table in both modes and
    // must be identical down to label support and raw values.
    if a.comparison.labels != b.comparison.labels {
        return Err(ctx("comparison labels"));
    }
    if bits(&a.comparison.probs) != bits(&b.comparison.probs) {
        return Err(ctx("comparison probabilities"));
    }
    if bits(&a.comparison.raw) != bits(&b.comparison.raw) {
        return Err(ctx("comparison raw values"));
    }
    // The aligned pair is the scored object; it must be bit-identical.
    if a.aligned.labels != b.aligned.labels {
        return Err(ctx("aligned labels"));
    }
    if bits(&a.aligned.p) != bits(&b.aligned.p) {
        return Err(ctx("aligned target probabilities"));
    }
    if bits(&a.aligned.q) != bits(&b.aligned.q) {
        return Err(ctx("aligned comparison probabilities"));
    }
    Ok(())
}

fn build_db(
    rows: usize,
    dims: usize,
    card: usize,
    measures: usize,
    seed: u64,
) -> (Database, AnalystQuery) {
    let spec = SyntheticSpec::knobs(rows, dims, card, 1.0, measures, seed).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1],
        deviating_measures: vec![],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Database::new();
    db.register(spec.generate());
    (db, analyst)
}

/// Bitwise comparison of two plan outputs: every result set, row, and
/// value must match, with floats compared through `to_bits`.
fn outputs_bitwise_eq(a: &PlanOutput, b: &PlanOutput) -> Result<(), String> {
    if a.num_result_sets() != b.num_result_sets() {
        return Err("result-set count differs".to_string());
    }
    for s in 0..a.num_result_sets() {
        let (ra, rb) = (a.result_set(s).unwrap(), b.result_set(s).unwrap());
        if ra.columns != rb.columns {
            return Err(format!("set {s}: columns differ"));
        }
        if ra.rows.len() != rb.rows.len() {
            return Err(format!("set {s}: row count differs"));
        }
        for (i, (x, y)) in ra.rows.iter().zip(&rb.rows).enumerate() {
            for (va, vb) in x.iter().zip(y) {
                let eq = match (va, vb) {
                    (Value::Float(f), Value::Float(g)) => f.to_bits() == g.to_bits(),
                    _ => va == vb,
                };
                if !eq {
                    return Err(format!("set {s} row {i}: {va:?} vs {vb:?}"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `run_partitioned` — one plan split across row partitions with
    /// mergeable partial aggregate states — is **byte-identical** to
    /// single-threaded `execute` for aggregate and grouping-sets plans,
    /// for every worker count and partition shape. (Float sums are
    /// exact and order-independent in the kernel, so re-associating
    /// them across partitions cannot perturb a single bit.)
    #[test]
    fn partitioned_execution_matches_single_threaded_bitwise(
        seed in 0u64..10_000,
        dims in 2usize..5,
        card in 2usize..10,
        measures in 1usize..3,
        workers in 2usize..9,
    ) {
        let (db, analyst) = build_db(500, dims, card, measures, seed);
        let table = db.table(&analyst.table).unwrap();
        let filter = analyst.filter.clone().expect("planted filter");

        // A combined target/comparison aggregate (per-aggregate
        // predicates), a multi-set grouping-sets plan with a scan
        // filter, and a row-sliced plan.
        let aggregate = LogicalPlan::scan(&analyst.table).aggregate(
            vec!["d1".into()],
            vec![
                AggSpec::new(AggFunc::Sum, "m0")
                    .with_filter(filter.clone())
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "m0").with_alias("comparison"),
                AggSpec::new(AggFunc::Avg, "m0"),
                AggSpec::count_star(),
            ],
        );
        let grouping_sets = LogicalPlan::scan(&analyst.table)
            .filter(Expr::col("d0").eq("v0"))
            .grouping_sets(
                (0..dims).map(|d| vec![format!("d{d}")]).chain([vec![]]).collect(),
                vec![
                    AggSpec::new(AggFunc::Sum, "m0"),
                    AggSpec::new(AggFunc::Min, "m0"),
                    AggSpec::new(AggFunc::Max, "m0"),
                ],
            );
        let sliced = aggregate.clone().sliced(71, 433);

        for (name, plan) in [
            ("aggregate", &aggregate),
            ("grouping-sets", &grouping_sets),
            ("sliced", &sliced),
        ] {
            let single = plan.lower().unwrap().execute(&table).unwrap();
            let partitioned = run_partitioned(&db, plan, workers).unwrap();
            if let Err(msg) = outputs_bitwise_eq(&single, &partitioned) {
                return Err(TestCaseError::fail(format!(
                    "[{name}, {workers} workers] {msg}"
                )));
            }
        }
    }

    /// Combined target/comparison, combined aggregates, and grouping-set
    /// combining (under tight and loose memory budgets, sequential and
    /// parallel) are all byte-identical to the basic framework.
    #[test]
    fn shared_scan_plans_match_naive_execution_bitwise(
        seed in 0u64..10_000,
        dims in 2usize..5,
        card in 2usize..10,
        measures in 1usize..3,
        budget in prop_oneof![Just(6u64), Just(1_000_000u64)],
    ) {
        let (db, analyst) = build_db(400, dims, card, measures, seed);
        let baseline = run_views(&db, &analyst, &OptimizerConfig::basic());

        let mut combined_tc = OptimizerConfig::basic();
        combined_tc.combine_target_comparison = true;

        let mut combined_aggs = OptimizerConfig::basic();
        combined_aggs.combine_aggregates = true;

        let mut grouping_sets = OptimizerConfig::basic();
        grouping_sets.combine_target_comparison = true;
        grouping_sets.combine_aggregates = true;
        grouping_sets.group_by_combining = GroupByCombining::GroupingSets;
        grouping_sets.memory_budget_groups = budget;

        let mut grouping_sets_parallel = grouping_sets.clone();
        grouping_sets_parallel.parallelism = 3;

        for (name, cfg) in [
            ("combine target/comparison", &combined_tc),
            ("combine aggregates", &combined_aggs),
            ("combine group-bys (grouping sets)", &grouping_sets),
            ("combine group-bys, parallel", &grouping_sets_parallel),
        ] {
            let optimized = run_views(&db, &analyst, cfg);
            prop_assert_eq!(optimized.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&optimized) {
                if let Err(msg) = bitwise_eq(a, b) {
                    return Err(TestCaseError::fail(format!("[{name}] {msg}")));
                }
            }
            // The rewrites must actually share scans: never more DBMS
            // queries than the basic framework's two per view.
            let table = db.table(&analyst.table).unwrap();
            let views = enumerate_views(table.schema(), &FunctionSet::standard());
            let md = MetadataCollector::new().collect(&table, false).unwrap();
            let n_opt = plan(&views, &analyst, &md, cfg).num_queries();
            let n_base = plan(&views, &analyst, &md, &OptimizerConfig::basic()).num_queries();
            prop_assert!(n_opt < n_base, "[{}] {} queries vs {} baseline", name, n_opt, n_base);
        }
    }

    /// Live ingest equivalence: a table built in one shot and the same
    /// rows arriving through K random-sized appends
    /// (`Database::append_rows`) produce **byte-identical** query
    /// results for every plan shape — segmented storage, shared
    /// dictionaries, and append lineage must be invisible to the
    /// executor. On top, a partial-aggregate state computed at any
    /// intermediate version and brought forward by a delta-merge
    /// (the serving layer's incremental refresh) must finalize to
    /// exactly the cold answer at the final version.
    #[test]
    fn appended_tables_match_one_shot_builds_bitwise(
        seed in 0u64..10_000,
        dims in 2usize..5,
        card in 2usize..10,
        measures in 1usize..3,
        appends in 1usize..6,
    ) {
        let rows = 400;
        let (oneshot_db, analyst) = build_db(rows, dims, card, measures, seed);
        let oneshot = oneshot_db.table(&analyst.table).unwrap();
        let filter = analyst.filter.clone().expect("planted filter");

        // Rebuild the identical logical table through K appends with
        // pseudo-random chunk boundaries derived from the seed.
        let mut bounds: Vec<usize> = (0..appends)
            .map(|i| {
                let mix = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 * 1442695040888963407);
                (mix % rows as u64) as usize
            })
            .collect();
        bounds.push(0);
        bounds.push(rows);
        bounds.sort_unstable();
        bounds.dedup();

        let ingest_db = Database::new();
        let mut base = Table::new(&analyst.table, oneshot.schema().clone());
        for i in 0..bounds[1] {
            base.push_row(oneshot.row(i)).unwrap();
        }
        ingest_db.register(base);
        let mut versions = vec![ingest_db.table(&analyst.table).unwrap()];
        for w in bounds[1..].windows(2) {
            let chunk: Vec<Vec<Value>> = (w[0]..w[1]).map(|i| oneshot.row(i)).collect();
            versions.push(ingest_db.append_rows(&analyst.table, chunk).unwrap());
        }
        let live = ingest_db.table(&analyst.table).unwrap();
        prop_assert_eq!(live.num_rows(), rows);
        prop_assert_eq!(live.num_segments(), bounds.len() - 1);

        let aggregate = LogicalPlan::scan(&analyst.table).aggregate(
            vec!["d1".into()],
            vec![
                AggSpec::new(AggFunc::Sum, "m0")
                    .with_filter(filter.clone())
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "m0").with_alias("comparison"),
                AggSpec::new(AggFunc::Avg, "m0"),
                AggSpec::count_star(),
            ],
        );
        let grouping_sets = LogicalPlan::scan(&analyst.table)
            .filter(Expr::col("d0").eq("v0"))
            .grouping_sets(
                (0..dims).map(|d| vec![format!("d{d}")]).chain([vec![]]).collect(),
                vec![
                    AggSpec::new(AggFunc::Sum, "m0"),
                    AggSpec::new(AggFunc::Min, "m0"),
                    AggSpec::new(AggFunc::Max, "m0"),
                    AggSpec::count_star(),
                ],
            );
        let sliced = aggregate.clone().sliced(71, 433);

        for (name, plan) in [
            ("aggregate", &aggregate),
            ("grouping-sets", &grouping_sets),
            ("sliced", &sliced),
        ] {
            let phys = plan.lower().unwrap();
            let cold_oneshot = phys.execute(&oneshot).unwrap();
            let cold_live = phys.execute(&live).unwrap();
            if let Err(msg) = outputs_bitwise_eq(&cold_oneshot, &cold_live) {
                return Err(TestCaseError::fail(format!(
                    "[{name}] one-shot vs appended: {msg}"
                )));
            }

            // Incremental refresh from every intermediate version: the
            // state cached at version v plus one delta scan merges to
            // the bit-exact cold answer at the final version — even
            // when the delta spans several appends (lineage lookup).
            for snapshot in &versions {
                let (lo, hi) = live
                    .append_delta_since(snapshot.version())
                    .expect("pure-append lineage");
                prop_assert_eq!(lo, snapshot.num_rows());
                let mut cached = phys
                    .execute_partial(snapshot, (0, snapshot.num_rows()))
                    .unwrap();
                let delta = phys.execute_partial(&live, (lo, hi)).unwrap();
                cached.merge(delta, &live).unwrap();
                let refreshed = cached.finalize(&live).unwrap();
                if let Err(msg) = outputs_bitwise_eq(&cold_live, &refreshed) {
                    return Err(TestCaseError::fail(format!(
                        "[{name}] refresh from v{} ({} of {} rows old): {msg}",
                        snapshot.version(),
                        snapshot.num_rows(),
                        rows
                    )));
                }
            }
        }
    }

    /// Durability round trip: `open(save(db))` is **bit-identical** for
    /// every plan shape — aggregate with per-aggregate predicates,
    /// multi-set grouping sets, row slices — on tables built through
    /// random append histories (so the store must reproduce segment
    /// chunking, shared dictionaries, versions, and lineage exactly).
    /// A partial-aggregate state cached at an intermediate version
    /// must also refresh onto the *reopened* table to the bit-exact
    /// cold answer: the incremental-maintenance contract survives the
    /// restart.
    #[test]
    fn save_open_roundtrip_is_bit_identical_for_every_plan_shape(
        seed in 0u64..10_000,
        dims in 2usize..5,
        card in 2usize..10,
        measures in 1usize..3,
        appends in 0usize..4,
    ) {
        let rows = 300;
        let (db, analyst) = build_db(rows, dims, card, measures, seed);
        let snapshot = db.table(&analyst.table).unwrap();
        for k in 0..appends {
            let chunk_rows = 10 + (seed as usize + k) % 30;
            let t = seedb::data::SyntheticSpec::knobs(
                chunk_rows, dims, card, 1.0, measures, seed ^ (k as u64 + 1),
            )
            .generate();
            let chunk: Vec<Vec<Value>> = (0..chunk_rows).map(|i| t.row(i)).collect();
            db.append_rows(&analyst.table, chunk).unwrap();
        }
        let live = db.table(&analyst.table).unwrap();

        let dir = std::env::temp_dir().join(format!(
            "seedb-roundtrip-prop-{}-{seed}-{dims}-{card}-{measures}-{appends}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        db.save(&dir).unwrap();
        let reopened = Database::open(&dir).unwrap();
        let loaded = reopened.table(&analyst.table).unwrap();

        // Structure reproduces exactly: rows, version stamps, lineage,
        // segment boundaries, dictionary codes.
        prop_assert_eq!(loaded.num_rows(), live.num_rows());
        prop_assert_eq!(loaded.version(), live.version());
        prop_assert_eq!(loaded.lineage(), live.lineage());
        prop_assert_eq!(loaded.num_segments(), live.num_segments());
        prop_assert_eq!(reopened.version(), db.version());
        for d in 0..dims {
            let (a, b) = (
                live.column(&format!("d{d}")).unwrap(),
                loaded.column(&format!("d{d}")).unwrap(),
            );
            for i in 0..a.len() {
                prop_assert_eq!(a.code_at(i), b.code_at(i), "dict code at row {}", i);
            }
        }

        let filter = analyst.filter.clone().expect("planted filter");
        let aggregate = LogicalPlan::scan(&analyst.table).aggregate(
            vec!["d1".into()],
            vec![
                AggSpec::new(AggFunc::Sum, "m0")
                    .with_filter(filter.clone())
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "m0").with_alias("comparison"),
                AggSpec::new(AggFunc::Avg, "m0"),
                AggSpec::count_star(),
            ],
        );
        let grouping_sets = LogicalPlan::scan(&analyst.table)
            .filter(Expr::col("d0").eq("v0"))
            .grouping_sets(
                (0..dims).map(|d| vec![format!("d{d}")]).chain([vec![]]).collect(),
                vec![
                    AggSpec::new(AggFunc::Sum, "m0"),
                    AggSpec::new(AggFunc::Min, "m0"),
                    AggSpec::new(AggFunc::Max, "m0"),
                ],
            );
        let sliced = aggregate.clone().sliced(37, 211);

        for (name, plan) in [
            ("aggregate", &aggregate),
            ("grouping-sets", &grouping_sets),
            ("sliced", &sliced),
        ] {
            let phys = plan.lower().unwrap();
            let before = phys.execute(&live).unwrap();
            let after = phys.execute(&loaded).unwrap();
            if let Err(msg) = outputs_bitwise_eq(&before, &after) {
                return Err(TestCaseError::fail(format!(
                    "[{name}] reopened vs live: {msg}"
                )));
            }

            // Incremental refresh across the restart: a state cached at
            // the pre-append snapshot merges with a delta scanned from
            // the REOPENED table to the bit-exact cold answer.
            if let Some((lo, hi)) = loaded.append_delta_since(snapshot.version()) {
                prop_assert_eq!(lo, snapshot.num_rows());
                let mut cached = phys
                    .execute_partial(&snapshot, (0, snapshot.num_rows()))
                    .unwrap();
                let delta = phys.execute_partial(&loaded, (lo, hi)).unwrap();
                cached.merge(delta, &loaded).unwrap();
                let refreshed = cached.finalize(&loaded).unwrap();
                if let Err(msg) = outputs_bitwise_eq(&after, &refreshed) {
                    return Err(TestCaseError::fail(format!(
                        "[{name}] refresh across restart: {msg}"
                    )));
                }
            } else {
                return Err(TestCaseError::fail(
                    "lineage lost across restart".to_string(),
                ));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The multi-group-by roll-up mode re-associates float additions, so
    /// it is equivalent to 1e-9 rather than bit-exact.
    #[test]
    fn multigroupby_rollup_matches_within_tolerance(
        seed in 0u64..10_000,
        dims in 2usize..4,
        card in 2usize..6,
    ) {
        let (db, analyst) = build_db(300, dims, card, 1, seed);
        let baseline = run_views(&db, &analyst, &OptimizerConfig::basic());

        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        cfg.combine_aggregates = true;
        cfg.group_by_combining = GroupByCombining::MultiGroupBy;
        cfg.memory_budget_groups = 1_000_000;
        let rolled = run_views(&db, &analyst, &cfg);

        prop_assert_eq!(rolled.len(), baseline.len());
        for (a, b) in baseline.iter().zip(&rolled) {
            prop_assert_eq!(&a.spec, &b.spec);
            prop_assert!(
                (a.utility - b.utility).abs() < 1e-9,
                "{}: {} vs {}",
                a.spec,
                a.utility,
                b.utility
            );
        }
    }
}
