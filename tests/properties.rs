//! Property-based tests over the core invariants, spanning crates:
//! distance-metric axioms, distribution normalization, alignment,
//! bin-packing validity, and optimizer-plan equivalence on random data.

use proptest::prelude::*;

use seedb::core::packing::{is_valid_packing, pack};
use seedb::core::{distance, AlignedPair, Distribution, Metric};

fn prob_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, n).prop_map(|v| {
        let s: f64 = v.iter().sum();
        if s > 0.0 {
            v.into_iter().map(|x| x / s).collect()
        } else {
            v
        }
    })
}

proptest! {
    #[test]
    fn distances_are_nonnegative_and_finite(
        n in 1usize..30,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let raw2: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| if s > 0.0 { x / s } else { 0.0 }).collect::<Vec<_>>()
        };
        let p = norm(&raw);
        let q = norm(&raw2);
        for m in Metric::all() {
            let d = distance(m, &p, &q);
            prop_assert!(d.is_finite(), "{m}: {d}");
            prop_assert!(d >= 0.0, "{m}: {d}");
        }
    }

    #[test]
    fn identity_of_indiscernibles(p in prob_vec(12)) {
        for m in Metric::all() {
            let d = distance(m, &p, &p);
            prop_assert!(d.abs() < 1e-9, "{m}: d(p,p) = {d}");
        }
    }

    #[test]
    fn symmetric_metrics_commute(p in prob_vec(10), q in prob_vec(10)) {
        for m in Metric::all().into_iter().filter(|m| m.is_symmetric()) {
            let ab = distance(m, &p, &q);
            let ba = distance(m, &q, &p);
            prop_assert!((ab - ba).abs() < 1e-9, "{m}: {ab} vs {ba}");
        }
    }

    #[test]
    fn l1_triangle_inequality(
        p in prob_vec(8),
        q in prob_vec(8),
        r in prob_vec(8),
    ) {
        let pq = distance(Metric::L1, &p, &q);
        let qr = distance(Metric::L1, &q, &r);
        let pr = distance(Metric::L1, &p, &r);
        prop_assert!(pr <= pq + qr + 1e-9);
        // Euclidean too.
        let pq = distance(Metric::Euclidean, &p, &q);
        let qr = distance(Metric::Euclidean, &q, &r);
        let pr = distance(Metric::Euclidean, &p, &r);
        prop_assert!(pr <= pq + qr + 1e-9);
    }

    #[test]
    fn js_distance_is_bounded(p in prob_vec(10), q in prob_vec(10)) {
        let d = distance(Metric::JensenShannon, &p, &q);
        prop_assert!(d <= 2f64.ln().sqrt() + 1e-9, "JS distance exceeded bound: {d}");
    }

    #[test]
    fn distribution_normalizes(values in proptest::collection::vec(-50.0f64..200.0, 1..40)) {
        let pairs: Vec<(String, Option<f64>)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("g{i:02}"), Some(*v)))
            .collect();
        let d = Distribution::from_pairs(pairs);
        let total: f64 = d.probs.iter().sum();
        let has_mass = values.iter().any(|v| *v > 0.0);
        if has_mass {
            prop_assert!((total - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(total.abs() < 1e-12);
        }
        prop_assert!(d.probs.iter().all(|p| *p >= 0.0));
        // Labels sorted.
        prop_assert!(d.labels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn alignment_is_a_label_union(
        a in proptest::collection::btree_set(0u8..40, 0..20),
        b in proptest::collection::btree_set(0u8..40, 0..20),
    ) {
        let mk = |s: &std::collections::BTreeSet<u8>| Distribution::from_pairs(
            s.iter().map(|i| (format!("g{i:02}"), Some(1.0))).collect(),
        );
        let da = mk(&a);
        let db = mk(&b);
        let aligned = AlignedPair::align(&da, &db);
        let union: std::collections::BTreeSet<u8> = a.union(&b).copied().collect();
        prop_assert_eq!(aligned.len(), union.len());
        prop_assert!(aligned.labels.windows(2).all(|w| w[0] < w[1]));
        // Probabilities preserved for labels each side owns.
        for (i, l) in aligned.labels.iter().enumerate() {
            prop_assert!((aligned.p[i] - da.prob(l)).abs() < 1e-12);
            prop_assert!((aligned.q[i] - db.prob(l)).abs() < 1e-12);
        }
    }

    #[test]
    fn packing_is_always_valid(
        weights in proptest::collection::vec(1u64..100, 0..40),
        capacity in 1u64..200,
    ) {
        let bins = pack(&weights, capacity);
        prop_assert!(is_valid_packing(&bins, &weights, capacity));
        // Lower bound: every oversized item needs its own bin, and the
        // normal items need at least ceil(sum/capacity) bins.
        if !weights.is_empty() {
            let oversized = weights.iter().filter(|w| **w > capacity).count();
            let normal_sum: u64 = weights.iter().filter(|w| **w <= capacity).sum();
            let lb = oversized + normal_sum.div_ceil(capacity) as usize;
            prop_assert!(bins.len() >= lb, "{} bins < lower bound {lb}", bins.len());
            prop_assert!(bins.len() <= weights.len());
        }
    }
}

mod optimizer_equivalence {
    use super::*;
    use seedb::core::{AnalystQuery, GroupByCombining, PruningConfig, SeeDb, SeeDbConfig};
    use seedb::data::{Plant, SyntheticSpec};
    use seedb::memdb::Database;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// On random synthetic datasets, every optimizer configuration
        /// produces the same utilities as the basic framework.
        #[test]
        fn all_plans_score_identically(
            seed in 0u64..1000,
            dims in 3usize..6,
            card in 2usize..12,
            measures in 1usize..3,
        ) {
            let spec = SyntheticSpec::knobs(800, dims, card, 1.0, measures, seed)
                .with_plant(Plant {
                    subset_dim: 0,
                    subset_value: 0,
                    deviating_dims: vec![1],
                    deviating_measures: vec![],
                });
            let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
            let db = Arc::new(Database::new());
            db.register(spec.generate());

            let mut base_cfg = SeeDbConfig::basic();
            base_cfg.pruning = PruningConfig::disabled();
            let baseline = SeeDb::new(db.clone(), base_cfg).recommend(&analyst).unwrap();

            for combining in [
                GroupByCombining::Off,
                GroupByCombining::GroupingSets,
                GroupByCombining::MultiGroupBy,
            ] {
                for budget in [8u64, 1_000_000] {
                    let mut cfg = SeeDbConfig::recommended();
                    cfg.pruning = PruningConfig::disabled();
                    cfg.execution = cfg.execution.with_workers(2);
                    cfg.optimizer.group_by_combining = combining;
                    cfg.optimizer.memory_budget_groups = budget;
                    let rec = SeeDb::new(db.clone(), cfg).recommend(&analyst).unwrap();
                    prop_assert_eq!(rec.all.len(), baseline.all.len());
                    for (a, b) in baseline.all.iter().zip(&rec.all) {
                        prop_assert_eq!(&a.spec, &b.spec);
                        prop_assert!(
                            (a.utility - b.utility).abs() < 1e-9,
                            "{} differs under {:?}/{}: {} vs {}",
                            a.spec, combining, budget, a.utility, b.utility
                        );
                    }
                }
            }
        }
    }
}
