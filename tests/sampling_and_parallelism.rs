//! Integration tests for the approximate/parallel execution paths:
//! sampling accuracy degrades gracefully, parallelism changes nothing
//! about results, and both compose with the other optimizations.

use std::sync::Arc;

use seedb::core::{AnalystQuery, SeeDb, SeeDbConfig, ViewResult};
use seedb::data::{Plant, SyntheticSpec};
use seedb::memdb::{Database, SampleSpec};

fn planted_db(rows: usize, seed: u64) -> (Arc<Database>, AnalystQuery, Vec<String>) {
    let spec = SyntheticSpec::knobs(rows, 6, 8, 1.0, 2, seed).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 25.0)],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let truth = spec.ground_truth_dims();
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    (db, analyst, truth)
}

fn top_dims(views: &[ViewResult], k: usize) -> Vec<String> {
    let mut sorted = views.to_vec();
    sorted.sort_by(|a, b| b.utility.partial_cmp(&a.utility).unwrap());
    let mut dims = Vec::new();
    for v in sorted {
        if !dims.contains(&v.spec.dimension) {
            dims.push(v.spec.dimension);
        }
        if dims.len() >= k {
            break;
        }
    }
    dims
}

#[test]
fn sampling_preserves_the_planted_ranking() {
    let (db, analyst, truth) = planted_db(60_000, 5);
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.optimizer.sample = Some(SampleSpec::Bernoulli {
        fraction: 0.1,
        seed: 17,
    });
    let rec = SeeDb::new(db, cfg).recommend(&analyst).unwrap();
    // A 10% sample of 60k rows easily preserves the planted top dims.
    let dims = top_dims(&rec.all, 2);
    for t in &truth {
        assert!(dims.contains(t), "sampled top dims {dims:?} missing {t}");
    }
    // And the scan cost reflects the sample.
    assert!(
        rec.cost.rows_scanned < 60_000 / 5,
        "sampled run scanned {} rows",
        rec.cost.rows_scanned
    );
}

#[test]
fn reservoir_sampling_also_works() {
    let (db, analyst, truth) = planted_db(60_000, 6);
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.optimizer.sample = Some(SampleSpec::Reservoir {
        size: 8_000,
        seed: 23,
    });
    let rec = SeeDb::new(db, cfg).recommend(&analyst).unwrap();
    let dims = top_dims(&rec.all, 2);
    for t in &truth {
        assert!(dims.contains(t), "sampled top dims {dims:?} missing {t}");
    }
}

#[test]
fn sampling_is_deterministic_per_seed() {
    let (db, analyst, _) = planted_db(20_000, 7);
    let run = |seed: u64| {
        let mut cfg = SeeDbConfig::recommended().with_k(5);
        cfg.execution = cfg.execution.with_workers(1);
        cfg.optimizer.sample = Some(SampleSpec::Bernoulli {
            fraction: 0.05,
            seed,
        });
        SeeDb::new(db.clone(), cfg)
            .recommend(&analyst)
            .unwrap()
            .all
            .iter()
            .map(|v| v.utility)
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn parallelism_changes_latency_not_results() {
    let (db, analyst, _) = planted_db(30_000, 8);
    let run = |workers: usize| {
        let mut cfg = SeeDbConfig::basic().with_k(5);
        cfg.execution = cfg.execution.with_workers(workers);
        SeeDb::new(db.clone(), cfg).recommend(&analyst).unwrap()
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.all.len(), par.all.len());
    for (a, b) in seq.all.iter().zip(&par.all) {
        assert_eq!(a.spec, b.spec);
        assert!((a.utility - b.utility).abs() < 1e-12);
    }
    // Identical DBMS work regardless of workers.
    assert_eq!(seq.cost.rows_scanned, par.cost.rows_scanned);
    assert_eq!(seq.cost.queries, par.cost.queries);
}

/// Intra-plan parallelism (PhasedParallel): worker count must be
/// invisible in the outcome — identical utilities (to the bit), pruned
/// sets, and per-phase survivor counts for workers ∈ {1, 4}.
#[test]
fn phased_parallel_workers_are_invisible_in_the_outcome() {
    let (db, analyst, truth) = planted_db(50_000, 11);
    let run = |workers: usize| {
        let mut cfg = SeeDbConfig::recommended().with_k(4);
        cfg.execution = seedb::core::ExecutionStrategy::phased().with_workers(workers);
        SeeDb::new(db.clone(), cfg).recommend(&analyst).unwrap()
    };
    let seq = run(1);
    let par = run(4);

    assert_eq!(seq.all.len(), par.all.len());
    for (a, b) in seq.all.iter().zip(&par.all) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
    }
    assert_eq!(seq.early_pruned.len(), par.early_pruned.len());
    for (a, b) in seq.early_pruned.iter().zip(&par.early_pruned) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.at_phase, b.at_phase);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }
    assert_eq!(seq.num_queries, par.num_queries, "one plan per phase");

    // And the planted deviation still wins.
    let dims = top_dims(&par.views, 2);
    for t in &truth {
        assert!(dims.contains(t), "phased top dims {dims:?} missing {t}");
    }
}

#[test]
fn tiny_samples_still_return_k_views_without_errors() {
    let (db, analyst, _) = planted_db(10_000, 9);
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.optimizer.sample = Some(SampleSpec::Bernoulli {
        fraction: 0.001,
        seed: 3,
    });
    let rec = SeeDb::new(db, cfg).recommend(&analyst).unwrap();
    assert!(rec.errors.is_empty());
    assert!(!rec.views.is_empty());
    for v in &rec.views {
        assert!(v.utility.is_finite());
    }
}
