//! Serving-layer tests: the shared partial-aggregate cache and the
//! cross-request scan batcher must be invisible in the results — every
//! cached, batched, or concurrent recommendation is byte-identical to a
//! cold sequential one — while the cost counters prove the sharing
//! actually happened.

use std::sync::Arc;
use std::time::Duration;

use seedb::core::{
    AnalystQuery, Recommendation, RefreshConfig, RefreshMode, SeeDb, SeeDbConfig, Service,
    ServiceConfig,
};
use seedb::memdb::{ColumnDef, DataType, Database, Expr, SampleSpec, Schema, Table, Value};

/// A fact table with planted structure: d0 selects subsets, d1 skews
/// per subset (deviation signal), d2/d3 are balanced noise.
fn fact_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::dimension("d0", DataType::Str),
        ColumnDef::dimension("d1", DataType::Str),
        ColumnDef::dimension("d2", DataType::Str),
        ColumnDef::dimension("d3", DataType::Str),
        ColumnDef::measure("m0", DataType::Float64),
        ColumnDef::measure("m1", DataType::Float64),
    ])
    .unwrap();
    let mut t = Table::new("facts", schema);
    for i in 0..rows {
        let sub = i % 4;
        // d1 skews strongly inside subset 0, mildly inside subset 1.
        let d1 = match sub {
            0 => i % 10 / 3,  // mostly 0..2
            1 => (i / 2) % 5, // spread
            _ => i % 5,       // uniform
        };
        t.push_row(vec![
            Value::from(format!("s{sub}")),
            Value::from(format!("g{d1}")),
            Value::from(format!("x{}", i % 3)),
            Value::from(format!("y{}", (i / 7) % 4)),
            Value::Float((i % 13) as f64 + if sub == 0 { 20.0 } else { 0.0 }),
            Value::Float((i % 5) as f64),
        ])
        .unwrap();
    }
    t
}

fn db_with_facts(rows: usize) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.register(fact_table(rows));
    db
}

/// Pipeline config whose results do not depend on workload history
/// (access-frequency pruning consults the shared tracker, which would
/// make concurrent outcomes order-dependent).
fn deterministic_config() -> SeeDbConfig {
    let mut cfg = SeeDbConfig::recommended().with_k(5);
    cfg.pruning.access_frequency = false;
    cfg
}

fn service_config(window_ms: u64) -> ServiceConfig {
    ServiceConfig::recommended()
        .with_seedb(deterministic_config())
        .with_batch_window(Duration::from_millis(window_ms))
}

/// Non-panicking byte-identity check (the race test matches a result
/// against several version candidates).
fn recs_identical(a: &Recommendation, b: &Recommendation) -> bool {
    a.num_candidates == b.num_candidates
        && a.num_queries == b.num_queries
        && a.errors.is_empty()
        && b.errors.is_empty()
        && a.all.len() == b.all.len()
        && a.all.iter().zip(&b.all).all(|(x, y)| {
            x.spec == y.spec
                && x.utility.to_bits() == y.utility.to_bits()
                && x.target == y.target
                && x.comparison == y.comparison
        })
        && a.views.iter().map(|v| v.spec.label()).collect::<Vec<_>>()
            == b.views.iter().map(|v| v.spec.label()).collect::<Vec<_>>()
}

/// Byte-identity: every scored view matches by label, utility bits, and
/// both full distributions.
fn assert_recs_identical(a: &Recommendation, b: &Recommendation) {
    assert_eq!(a.num_candidates, b.num_candidates);
    assert_eq!(a.num_queries, b.num_queries);
    assert!(a.errors.is_empty() && b.errors.is_empty());
    assert_eq!(a.all.len(), b.all.len());
    for (x, y) in a.all.iter().zip(&b.all) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(
            x.utility.to_bits(),
            y.utility.to_bits(),
            "{}: {} vs {}",
            x.spec,
            x.utility,
            y.utility
        );
        assert_eq!(x.target, y.target, "{}", x.spec);
        assert_eq!(x.comparison, y.comparison, "{}", x.spec);
    }
    let top_a: Vec<String> = a.views.iter().map(|v| v.spec.label()).collect();
    let top_b: Vec<String> = b.views.iter().map(|v| v.spec.label()).collect();
    assert_eq!(top_a, top_b);
}

/// Rows `[from, to)` of the deterministic fact table — what an ingest
/// source would deliver as a delta batch.
fn fact_delta(from: usize, to: usize) -> Vec<Vec<Value>> {
    let full = fact_table(to);
    (from..to).map(|i| full.row(i)).collect()
}

#[test]
fn warm_cache_recommend_performs_zero_table_scans() {
    let db = db_with_facts(1200);
    let service = Service::new(db.clone(), service_config(0));
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let cold = service.recommend(&query).unwrap();
    let cold_stats = service.cache_stats();
    assert!(cold_stats.misses > 0, "cold run must scan");
    assert_eq!(cold_stats.hits, 0);

    let before = db.cost();
    let warm = service.recommend(&query).unwrap();
    let delta = db.cost().since(&before);

    // The acceptance bar: a repeated analyst query costs zero scans.
    assert_eq!(delta.table_scans, 0, "warm run must not scan");
    assert_eq!(delta.rows_scanned, 0);
    assert_eq!(delta.queries, 0);
    let warm_stats = service.cache_stats();
    assert!(warm_stats.hits >= cold_stats.misses);
    assert_eq!(warm_stats.misses, cold_stats.misses, "no new misses");
    assert_recs_identical(&cold, &warm);
}

#[test]
fn service_results_match_plain_engine() {
    let db = db_with_facts(800);
    let service = Service::new(db.clone(), service_config(0));
    let engine = SeeDb::new(db, deterministic_config());
    for filter in ["s0", "s1", "s2"] {
        let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq(filter)));
        let cold = engine.recommend(&query).unwrap();
        // Both the cold (miss/batch) and warm (hit) service paths must
        // be byte-identical to the plain engine.
        assert_recs_identical(&cold, &service.recommend(&query).unwrap());
        assert_recs_identical(&cold, &service.recommend(&query).unwrap());
    }
}

/// The concurrency property at the heart of the serving layer: K
/// sessions hammering overlapping analyst queries concurrently — hitting
/// the cache, joining each other's batches, racing evictions — always
/// produce exactly the cold sequential answer.
#[test]
fn concurrent_overlapping_queries_are_byte_identical_to_cold_sequential() {
    let rows = 900;
    let db = db_with_facts(rows);
    let queries: Vec<AnalystQuery> = vec![
        AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0"))),
        AnalystQuery::new("facts", Some(Expr::col("d0").eq("s1"))),
        AnalystQuery::new("facts", Some(Expr::col("d1").eq("g0"))),
        AnalystQuery::new("facts", None),
    ];

    // Cold sequential ground truth: a fresh single-shot engine per
    // query over an identical database.
    let cold: Vec<Recommendation> = queries
        .iter()
        .map(|q| {
            SeeDb::new(db_with_facts(rows), deterministic_config())
                .recommend(q)
                .unwrap()
        })
        .collect();

    let service = Service::new(db, service_config(3));
    let threads = 4;
    let reps = 3;
    std::thread::scope(|s| {
        for k in 0..threads {
            let session = service.session();
            let queries = &queries;
            let cold = &cold;
            s.spawn(move || {
                for rep in 0..reps {
                    // Stagger starting points so threads overlap on
                    // different queries at the same time.
                    for j in 0..queries.len() {
                        let i = (k + rep + j) % queries.len();
                        let rec = session.recommend(&queries[i]).unwrap();
                        assert_recs_identical(&cold[i], &rec);
                    }
                }
            });
        }
    });

    let stats = service.cache_stats();
    let total = (threads * reps * queries.len()) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        total * stats_plans_per_query(&service)
    );
    assert!(stats.hits > 0, "repeated queries must hit: {stats:?}");
}

/// With the recommended optimizer every analyst query plans exactly one
/// shared-scan query, which keeps the accounting in the concurrency test
/// exact. Guard that assumption.
fn stats_plans_per_query(service: &Service) -> u64 {
    let rec = service
        .recommend(&AnalystQuery::new("facts", Some(Expr::col("d0").eq("s3"))))
        .unwrap();
    assert_eq!(rec.num_queries, 1, "recommended optimizer packs one plan");
    1
}

#[test]
fn concurrent_identical_requests_coalesce_into_shared_scans() {
    let db = db_with_facts(1500);
    let service = Service::new(db.clone(), service_config(200));
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let before = db.cost();
    let threads = 4;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let session = service.session();
            let query = &query;
            s.spawn(move || session.recommend(query).unwrap());
        }
    });
    let delta = db.cost().since(&before);

    // Four analysts, one (occasionally two — scheduling) shared scan:
    // strictly better than one scan per analyst. Identical concurrent
    // requests coalesce by fingerprint (one plan in the batch) or hit
    // the cache the first one warmed; either way the scan is shared.
    assert!(
        delta.table_scans < threads as u64,
        "expected coalesced scans, got {delta:?}"
    );
    let stats = service.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        threads as u64,
        "one plan per request: {stats:?}"
    );
}

/// Distinct analyst queries have distinct fingerprints but — combined
/// target/comparison queries carry the analyst predicate per aggregate,
/// not in the scan — the *same* scan source. Concurrent misses therefore
/// merge into one grouping-sets superplan: N analysts, 1 scan.
#[test]
fn distinct_concurrent_queries_merge_into_one_shared_scan() {
    let rows = 1500;
    let db = db_with_facts(rows);
    let service = Service::new(db.clone(), service_config(500));
    let queries = [
        AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0"))),
        AnalystQuery::new("facts", Some(Expr::col("d0").eq("s1"))),
        AnalystQuery::new("facts", Some(Expr::col("d2").eq("x1"))),
    ];
    let cold: Vec<Recommendation> = queries
        .iter()
        .map(|q| {
            SeeDb::new(db_with_facts(rows), deterministic_config())
                .recommend(q)
                .unwrap()
        })
        .collect();

    let before = db.cost();
    std::thread::scope(|s| {
        for (q, cold_rec) in queries.iter().zip(&cold) {
            let session = service.session();
            s.spawn(move || assert_recs_identical(cold_rec, &session.recommend(q).unwrap()));
        }
    });
    let delta = db.cost().since(&before);

    let stats = service.cache_stats();
    assert!(
        stats.batch_scans >= 1,
        "distinct plans must merge into a shared scan: {stats:?}"
    );
    assert!(stats.batched_plans >= 2, "{stats:?}");
    assert!(
        delta.table_scans < queries.len() as u64,
        "merged scans must beat one scan per analyst: {delta:?}"
    );
}

/// Live ingest, lazy refresh: after an append, the warm probe brings
/// the cached state forward by scanning **only the delta rows** — no
/// full-table scan — and the answer is byte-identical to a cold engine
/// over a table holding the same rows.
#[test]
fn lazy_incremental_refresh_scans_only_the_delta_and_matches_cold() {
    let rows = 2000;
    let appended = 20;
    let db = db_with_facts(rows);
    let service = Service::new(db.clone(), service_config(0));
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    // Warm the cache, then append a small delta.
    service.recommend(&query).unwrap();
    service
        .append_rows("facts", fact_delta(rows, rows + appended))
        .unwrap();

    let before = db.cost();
    let refreshed = service.recommend(&query).unwrap();
    let delta_cost = db.cost().since(&before);
    let stats = service.cache_stats();

    // The acceptance bar: zero full-table scans on the warm path. The
    // only scan work is the delta itself (one partial scan per
    // refreshed plan; the recommended optimizer plans exactly one).
    assert!(stats.refreshes >= 1, "{stats:?}");
    assert_eq!(stats.refresh_rows, appended as u64, "{stats:?}");
    assert_eq!(stats.refresh_fallbacks, 0, "{stats:?}");
    assert_eq!(
        delta_cost.rows_scanned, appended as u64,
        "refresh must scan the delta rows only: {delta_cost:?}"
    );
    assert!(
        delta_cost.rows_scanned < rows as u64,
        "no full-table rescan"
    );

    // Byte-identical to a cold engine over the same logical rows.
    let cold_db = Arc::new(Database::new());
    cold_db.register(fact_table(rows + appended));
    let cold = SeeDb::new(cold_db, deterministic_config())
        .recommend(&query)
        .unwrap();
    assert_recs_identical(&cold, &refreshed);

    // And now the entry is re-stamped at the new version: the next
    // probe is an exact hit with zero scans of any kind.
    let before = db.cost();
    let warm = service.recommend(&query).unwrap();
    assert_eq!(db.cost().since(&before).table_scans, 0);
    assert_recs_identical(&cold, &warm);
}

/// Eager refresh maintains the cache at append time: the next probe is
/// an exact hit (zero scans), still byte-identical to cold.
#[test]
fn eager_refresh_makes_post_append_probes_exact_hits() {
    let rows = 1500;
    let appended = 15;
    let db = db_with_facts(rows);
    let config =
        service_config(0).with_refresh(RefreshConfig::recommended().with_mode(RefreshMode::Eager));
    let service = Service::new(db.clone(), config);
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    service.recommend(&query).unwrap();
    service
        .append_rows("facts", fact_delta(rows, rows + appended))
        .unwrap();
    let stats = service.cache_stats();
    assert!(
        stats.refreshes >= 1,
        "append must refresh eagerly: {stats:?}"
    );
    assert_eq!(stats.refresh_rows, appended as u64, "{stats:?}");

    let before = db.cost();
    let rec = service.recommend(&query).unwrap();
    let delta_cost = db.cost().since(&before);
    assert_eq!(
        delta_cost.table_scans, 0,
        "eager-refreshed probe is a pure hit"
    );
    assert_eq!(delta_cost.rows_scanned, 0);

    let cold_db = Arc::new(Database::new());
    cold_db.register(fact_table(rows + appended));
    let cold = SeeDb::new(cold_db, deterministic_config())
        .recommend(&query)
        .unwrap();
    assert_recs_identical(&cold, &rec);
}

/// Refresh is policy-bounded: with refresh off, or a delta above the
/// threshold, outdated entries fall back to invalidate + recompute —
/// and the recomputed answer still matches cold.
#[test]
fn refresh_policy_fallbacks_recompute_instead() {
    let rows = 400;
    for config in [
        service_config(0).with_refresh(RefreshConfig::recommended().with_mode(RefreshMode::Off)),
        service_config(0).with_refresh(RefreshConfig::recommended().with_max_delta_fraction(0.001)),
    ] {
        let db = db_with_facts(rows);
        let service = Service::new(db, config);
        let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));
        service.recommend(&query).unwrap();
        service
            .append_rows("facts", fact_delta(rows, rows + 40))
            .unwrap();
        let rec = service.recommend(&query).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.refreshes, 0, "{stats:?}");
        assert!(stats.refresh_fallbacks >= 1, "{stats:?}");
        assert!(stats.invalidations >= 1, "{stats:?}");

        let cold_db = Arc::new(Database::new());
        cold_db.register(fact_table(rows + 40));
        let cold = SeeDb::new(cold_db, deterministic_config())
            .recommend(&query)
            .unwrap();
        assert_recs_identical(&cold, &rec);
    }
}

/// The concurrent append+query path: one appender publishes versions
/// while K readers hammer recommendations through the shared cache.
/// Every reader must observe a *consistent snapshot* — its result
/// byte-identical to a cold run at one of the published versions,
/// never a torn mix of two versions.
#[test]
fn concurrent_appender_and_readers_see_consistent_snapshots() {
    let base = 600;
    let chunk = 150;
    let appends = 4;
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    // Stats-based pruning consults a metadata snapshot that may
    // legitimately be one version older than the execution snapshot
    // (each is consistent; the recommendation pipeline takes them
    // sequentially). Disable pruning so a reader's result is fully
    // determined by the execution snapshot and must equal exactly one
    // published version.
    let mut race_cfg = deterministic_config();
    race_cfg.pruning = seedb::core::PruningConfig::disabled();

    // Cold ground truth at every version the appender will publish.
    let candidates: Vec<Recommendation> = (0..=appends)
        .map(|k| {
            let db = Arc::new(Database::new());
            db.register(fact_table(base + k * chunk));
            SeeDb::new(db, race_cfg.clone()).recommend(&query).unwrap()
        })
        .collect();

    let db = db_with_facts(base);
    let service = Service::new(
        db,
        ServiceConfig::recommended()
            .with_seedb(race_cfg)
            .with_batch_window(Duration::from_millis(1)),
    );
    let readers = 3;
    std::thread::scope(|s| {
        for _ in 0..readers {
            let session = service.session();
            let query = &query;
            let candidates = &candidates;
            s.spawn(move || {
                for _ in 0..6 {
                    let rec = session.recommend(query).unwrap();
                    let matched = candidates.iter().any(|c| recs_identical(c, &rec));
                    assert!(
                        matched,
                        "reader observed a torn snapshot: result matches no published version"
                    );
                }
            });
        }
        let appender = service.session();
        s.spawn(move || {
            for k in 0..appends {
                let from = base + k * chunk;
                appender
                    .append_rows("facts", fact_delta(from, from + chunk))
                    .unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
    });

    // Settled state: one more read matches the final version exactly.
    let rec = service.recommend(&query).unwrap();
    assert_recs_identical(&candidates[appends], &rec);
}

#[test]
fn version_bump_invalidation_never_serves_stale_results() {
    let db = db_with_facts(600);
    let service = Service::new(db.clone(), service_config(0));
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let v1 = service.recommend(&query).unwrap();
    assert!(service.cache_stats().inserts > 0);

    // Mutate the table: replace it with a longer, differently-shaped
    // version under the same name.
    db.register(fact_table(901));
    let v2 = service.recommend(&query).unwrap();
    let stats = service.cache_stats();
    assert!(stats.invalidations >= 1, "{stats:?}");

    // The new answer matches a cold engine on the new data ...
    let cold_db = Arc::new(Database::new());
    cold_db.register(fact_table(901));
    let cold = SeeDb::new(cold_db, deterministic_config())
        .recommend(&query)
        .unwrap();
    assert_recs_identical(&cold, &v2);

    // ... and genuinely differs from the stale answer, so serving the
    // old cache entry would have been observable.
    let changed = v1
        .all
        .iter()
        .zip(&v2.all)
        .any(|(a, b)| a.utility.to_bits() != b.utility.to_bits());
    assert!(changed, "table mutation must change some utility");

    // Warm again on the new version: zero scans.
    let before = db.cost();
    service.recommend(&query).unwrap();
    assert_eq!(db.cost().since(&before).table_scans, 0);
}

/// Regression: batches are keyed by (table, version), not table name.
/// A request that observes a *newer* registration mid-window must open
/// its own batch instead of adopting a state the leader computed
/// against the old table — finalizing a v1 state against a shorter v2
/// table would index out of bounds (or silently mislabel groups).
#[test]
fn batch_never_mixes_table_versions() {
    let db = db_with_facts(1000);
    let service = Service::new(db.clone(), service_config(250));
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let follower_rec = std::thread::scope(|s| {
        let leader = {
            let session = service.session();
            let query = &query;
            s.spawn(move || session.recommend(query).unwrap())
        };
        // Let the leader open its 250 ms batch window, then replace the
        // table with a *shorter* one and issue a second request that
        // sees the new registration.
        std::thread::sleep(Duration::from_millis(60));
        db.register(fact_table(400));
        let follower = {
            let session = service.session();
            let query = &query;
            s.spawn(move || session.recommend(query).unwrap())
        };
        leader.join().expect("leader must not panic");
        follower
            .join()
            .expect("follower must not adopt a stale-version batch")
    });

    // The follower's answer is exactly a cold run over the new table.
    let cold_db = Arc::new(Database::new());
    cold_db.register(fact_table(400));
    let cold = SeeDb::new(cold_db, deterministic_config())
        .recommend(&query)
        .unwrap();
    assert_recs_identical(&cold, &follower_rec);
}

#[test]
fn lru_eviction_bounds_the_cache_and_preserves_results() {
    let db = db_with_facts(700);
    let config = service_config(0).with_cache_capacity(2);
    let service = Service::new(db, config);
    let queries: Vec<AnalystQuery> = (0..4)
        .map(|i| AnalystQuery::new("facts", Some(Expr::col("d0").eq(format!("s{i}").as_str()))))
        .collect();
    let cold: Vec<Recommendation> = queries
        .iter()
        .map(|q| service.recommend(q).unwrap())
        .collect();
    assert!(service.cache_len() <= 2);
    let stats = service.cache_stats();
    assert!(stats.evictions >= 2, "{stats:?}");
    // Evicted entries recompute correctly (and re-evict others).
    for (q, cold_rec) in queries.iter().zip(&cold) {
        assert_recs_identical(cold_rec, &service.recommend(q).unwrap());
        assert!(service.cache_len() <= 2);
    }
}

/// The cached *unfinalized* states are themselves reusable: a plan
/// whose grouping sets and aggregates are covered by a same-source
/// cached entry is served by projection — zero scans — even though its
/// fingerprint never appeared before. With filter-attribute exclusion
/// off, any analyst query's plan covers the no-filter query: its
/// comparison aggregates are exactly the unfiltered states the
/// no-filter query needs, over the same grouping sets.
#[test]
fn covered_plans_are_served_by_projection_without_scans() {
    let rows = 800;
    let db = db_with_facts(rows);
    let mut cfg = service_config(0);
    cfg.seedb.exclude_filter_attributes = false;
    let service = Service::new(db.clone(), cfg);

    service
        .recommend(&AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0"))))
        .unwrap();

    let nofilter = AnalystQuery::new("facts", None);
    let before = db.cost();
    let rec = service.recommend(&nofilter).unwrap();
    assert_eq!(
        db.cost().since(&before).table_scans,
        0,
        "covered plan must be served by projection, not a scan"
    );
    let stats = service.cache_stats();
    assert!(stats.projection_hits >= 1, "{stats:?}");

    // Still byte-identical to a cold engine run.
    let cold_db = Arc::new(Database::new());
    cold_db.register(fact_table(rows));
    let mut cold_cfg = deterministic_config();
    cold_cfg.exclude_filter_attributes = false;
    let cold = SeeDb::new(cold_db, cold_cfg).recommend(&nofilter).unwrap();
    assert_recs_identical(&cold, &rec);
}

#[test]
fn sampled_plans_bypass_the_cache() {
    let db = db_with_facts(400);
    let mut cfg = service_config(0);
    cfg.seedb.optimizer.sample = Some(SampleSpec::Bernoulli {
        fraction: 0.5,
        seed: 9,
    });
    let service = Service::new(db, cfg);
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));
    service.recommend(&query).unwrap();
    service.recommend(&query).unwrap();
    let stats = service.cache_stats();
    assert!(stats.bypasses > 0, "{stats:?}");
    assert_eq!(stats.hits, 0, "sampled plans must not be cached: {stats:?}");
    assert_eq!(stats.inserts, 0);
}

#[test]
fn sessions_are_distinct_handles_over_shared_state() {
    let db = db_with_facts(500);
    let service = Service::new(db, service_config(0));
    let s1 = service.session();
    let s2 = service.session();
    assert_ne!(s1.id(), s2.id());
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));
    let a = s1.recommend(&query).unwrap();
    // The second session's identical query is served from the cache the
    // first session warmed.
    let hits_before = service.cache_stats().hits;
    let b = s2.recommend(&query).unwrap();
    assert!(service.cache_stats().hits > hits_before);
    assert_recs_identical(&a, &b);
}
