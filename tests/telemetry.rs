//! Telemetry-pipeline and EXPLAIN ANALYZE integration tests: the
//! serving layer's sampler/watchdog/flight-recorder stack must be
//! deterministic under an injected clock, and the explain report's
//! operator totals must reconcile exactly with the `exec.*` registry
//! cost counters.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use seedb::core::{AnalystQuery, SeeDbConfig, Service, ServiceConfig, TelemetryConfig};
use seedb::memdb::{CacheOutcome, ColumnDef, DataType, Database, Expr, Schema, Table, Value};
use seedb::obs::{ManualClock, Obs};

fn fact_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::dimension("d0", DataType::Str),
        ColumnDef::dimension("d1", DataType::Str),
        ColumnDef::measure("m0", DataType::Float64),
    ])
    .unwrap();
    let mut t = Table::new("facts", schema);
    for i in 0..rows {
        let sub = i % 3;
        t.push_row(vec![
            Value::from(format!("s{sub}")),
            Value::from(format!("g{}", i % 4)),
            Value::Float((i % 11) as f64 + if sub == 0 { 15.0 } else { 0.0 }),
        ])
        .unwrap();
    }
    t
}

fn deterministic_config() -> SeeDbConfig {
    let mut cfg = SeeDbConfig::recommended().with_k(3);
    cfg.pruning.access_frequency = false;
    cfg
}

fn service_config() -> ServiceConfig {
    ServiceConfig::recommended()
        .with_seedb(deterministic_config())
        .with_batch_window(Duration::from_millis(0))
}

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seedb-telemetry-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold run: the explain report's operator totals equal the registry's
/// cost-counter deltas exactly, and the operators show real scans.
#[test]
fn cold_explain_reconciles_with_registry_counters() {
    let db = Arc::new(Database::new());
    db.register(fact_table(600));
    let service = Service::new(db, service_config());
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let (rec, report) = service.recommend_explained(&query).unwrap();
    assert!(!rec.views.is_empty());
    assert!(!report.ops.is_empty(), "cold run must record operators");
    assert!(report.cost_delta.table_scans > 0, "cold run must scan");
    assert!(
        report.reconciles(),
        "operator totals must equal registry deltas:\n{}",
        report.render()
    );
    let totals = report.totals();
    assert_eq!(totals.rows_scanned, report.cost_delta.rows_scanned);
    assert_eq!(totals.table_scans, report.cost_delta.table_scans);
    assert!(totals.rows_matched <= totals.rows_scanned);
    // Cold operators are misses (batch/standalone scans), never hits.
    assert!(report
        .ops
        .iter()
        .all(|op| op.stats.cache != CacheOutcome::Hit));
    assert!(report.render().contains("reconciles: true"));
}

/// Warm runs cost zero scans, report every operator as a cache hit, and
/// render byte-identically across repeats — the stability acceptance
/// criterion for `:explain`.
#[test]
fn warm_explain_is_all_hits_and_byte_identical_across_runs() {
    let db = Arc::new(Database::new());
    db.register(fact_table(600));
    let service = Service::new(db, service_config());
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));

    let cold = service.recommend(&query).unwrap();
    let (warm_a, report_a) = service.recommend_explained(&query).unwrap();
    let (warm_b, report_b) = service.recommend_explained(&query).unwrap();

    for warm in [&warm_a, &warm_b] {
        assert_eq!(cold.views.len(), warm.views.len());
        for (x, y) in cold.all.iter().zip(&warm.all) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.utility.to_bits(), y.utility.to_bits());
        }
    }
    for report in [&report_a, &report_b] {
        assert!(!report.ops.is_empty());
        assert_eq!(report.cost_delta.table_scans, 0, "warm run must not scan");
        assert_eq!(report.cost_delta.rows_scanned, 0);
        assert!(report.reconciles());
        assert!(report
            .ops
            .iter()
            .all(|op| op.stats.cache == CacheOutcome::Hit));
    }
    assert_eq!(
        report_a.render(),
        report_b.render(),
        "warm explain reports must be byte-identical"
    );
}

/// Driving the recommend-latency histogram past the SLO bound trips the
/// `latency-p99` watchdog rule, flips `health()` to degraded, and writes
/// a flight-recorder dump whose bytes are deterministic: two identical
/// services produce identical dump files.
#[test]
fn latency_slo_breach_degrades_health_and_dumps_deterministically() {
    let run = |dump_dir: &PathBuf| -> (bool, String, Vec<u8>) {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        let db = Arc::new(Database::with_obs(obs));
        db.register(fact_table(200));
        let telemetry = TelemetryConfig {
            p99_bound_ns: 1_000,
            ..TelemetryConfig::recommended()
        }
        .with_dump_dir(dump_dir);
        let service = Service::new(db.clone(), service_config().with_telemetry(telemetry));

        assert!(service.health().healthy, "fresh service is healthy");
        assert_eq!(service.watchdog_rules().len(), 4);

        // Serve once (real work lands in the counters), then inject
        // latencies over the bound directly into the shared histogram —
        // under the manual clock the serve path itself records 0 ns.
        let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));
        service.recommend(&query).unwrap();
        let hist = db
            .obs()
            .registry()
            .register_histogram("service.recommend_ns");
        for _ in 0..10 {
            hist.record(5_000);
        }
        clock.advance_ns(2_000_000_000);
        let window = service.sample_window().expect("telemetry enabled");
        assert!(window.percentile("service.recommend_ns", 0.99) > 1_000);

        let health = service.health();
        assert!(!health.healthy, "p99 over bound must degrade health");
        let breach = health
            .breaches
            .iter()
            .find(|b| b.rule == "latency-p99")
            .expect("latency rule tripped");
        let dump = dump_dir.join(format!("dump-latency-p99-{}.json", breach.window_end_ns));
        let bytes = std::fs::read(&dump).expect("flight-recorder dump written");
        (health.healthy, breach.detail.clone(), bytes)
    };

    let dir_a = tmp("dump-a");
    let dir_b = tmp("dump-b");
    let (_, detail_a, bytes_a) = run(&dir_a);
    let (_, detail_b, bytes_b) = run(&dir_b);
    assert_eq!(detail_a, detail_b);
    assert_eq!(bytes_a, bytes_b, "same-seed dumps must be byte-identical");
    let text = String::from_utf8(bytes_a).unwrap();
    assert!(text.contains("\"breach\""));
    assert!(text.contains("\"config\""));
    assert!(text.contains("\"windows\""));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The telemetry surface degrades cleanly when disabled, and the serve
/// path ticks the sampler on its own once the interval elapses.
#[test]
fn telemetry_surface_disabled_and_opportunistic_ticking() {
    // Disabled: every accessor is inert and health is trivially green.
    let db = Arc::new(Database::new());
    db.register(fact_table(120));
    let off = Service::new(
        db,
        service_config().with_telemetry(TelemetryConfig::disabled()),
    );
    assert!(off.sample_window().is_none());
    assert!(off.telemetry_windows().is_empty());
    assert!(off.telemetry_interval().is_none());
    assert!(off.watchdog_rules().is_empty());
    let health = off.health();
    assert!(health.healthy);
    assert_eq!(health.windows_evaluated, 0);

    // Enabled under a manual clock: a serve after the interval elapses
    // closes a window with no explicit sample_window() call.
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::with_clock(clock.clone());
    let db = Arc::new(Database::with_obs(obs));
    db.register(fact_table(120));
    let service = Service::new(db, service_config());
    let query = AnalystQuery::new("facts", Some(Expr::col("d0").eq("s0")));
    service.recommend(&query).unwrap();
    clock.advance_ns(1_500_000_000);
    service.recommend(&query).unwrap();
    let windows = service.telemetry_windows();
    assert!(
        !windows.is_empty(),
        "serve path must tick the sampler once the interval elapsed"
    );
    assert!(
        windows[0].counter("service.cache.hits") + windows[0].counter("service.cache.misses") > 0
    );
    assert_eq!(service.telemetry_interval(), Some(Duration::from_secs(1)));
}
