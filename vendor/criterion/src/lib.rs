//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], `b.iter(..)`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! `sample_size` samples; fast closures are batched so every sample
//! spans at least ~1 ms of wall time. Results are printed to stdout and
//! written as `BENCH_<binary>.json` into `$SEEDB_BENCH_DIR` (default:
//! the current working directory) so CI can archive a perf baseline.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/id` path.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration (the regression-gate statistic:
    /// robust against one slow outlier sample).
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Samples measured.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Benchmark identifier: a function name and/or parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let result = measure(&id.id, 10, f);
        report(&result);
        self.results.push(result);
        self
    }

    /// Print the final summary and write the JSON baseline file.
    ///
    /// The JSON is deterministic and diffable: entries sorted by
    /// benchmark name, object keys in a fixed (alphabetical) order, and
    /// every float rendered with exactly one fractional digit — so
    /// committed baselines produce reviewable diffs.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let mut sorted: Vec<&BenchResult> = self.results.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut json = String::from("[\n");
        for (i, r) in sorted.iter().enumerate() {
            let comma = if i + 1 == sorted.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "  {{\"iters_per_sample\": {}, \"max_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"name\": {:?}, \"samples\": {}}}{comma}",
                r.iters_per_sample, r.max_ns, r.mean_ns, r.median_ns, r.min_ns, r.name, r.samples
            );
        }
        json.push_str("]\n");

        let dir = std::env::var("SEEDB_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{}.json", binary_stem());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("\ncould not write {path}: {e}"),
        }
    }
}

/// The `bench` binary's name with cargo's `-<hash>` suffix stripped.
fn binary_stem() -> String {
    let arg0 = std::env::args()
        .next()
        .unwrap_or_else(|| "bench".to_string());
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let result = measure(&name, self.sample_size, f);
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (results were recorded as they ran).
    pub fn finish(self) {}
}

fn measure<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) -> BenchResult {
    // Warmup + calibration: one iteration tells us how many iterations a
    // ~1 ms sample needs, so fast routines are batched.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().cloned().fold(0.0, f64::max);
    let median = {
        let mut s = per_iter_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    };
    BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        median_ns: median,
        min_ns: min,
        max_ns: max,
        samples,
        iters_per_sample,
    }
}

fn report(r: &BenchResult) {
    println!(
        "{:<56} {:>14} /iter (min {}, max {})",
        r.name,
        fmt_ns(r.mean_ns),
        fmt_ns(r.min_ns),
        fmt_ns(r.max_ns)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "g/4");
        assert!(c.results[0].mean_ns > 0.0);
        let r = &c.results[0];
        assert!(r.median_ns >= r.min_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("m", 10).id, "m/10");
        assert_eq!(BenchmarkId::from_parameter("0.25").id, "0.25");
    }
}
