//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with `prop_map`, numeric-range / tuple /
//! collection / option / sample strategies, [`test_runner::ProptestConfig`]
//! and [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs via `Debug` but is not minimized), and case generation is
//! seeded deterministically from the test's module path and name so runs
//! are reproducible.

pub mod test_runner {
    //! Test execution configuration and failure reporting.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fail with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (e.g. the test's full path).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }

        /// Build recursive values: apply `recurse` up to `depth` times to
        /// the base strategy (the size parameters are accepted for
        /// proptest API compatibility but unused — no shrinking here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: std::rc::Rc::new(move |inner| recurse(inner).boxed()),
            }
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Strategy choosing uniformly among several strategies of one value
    /// type (see [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        recurse: std::rc::Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut strat = self.base.clone();
            for _ in 0..levels {
                strat = (self.recurse)(strat);
            }
            strat.new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for any value of a primitive type (see [`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric spread of magnitudes.
            let m = rng.next_f64() * 2.0 - 1.0;
            let e = (rng.below(61) as i32) - 30;
            m * 2f64.powi(e)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use crate::strategy::Any;

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size or size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate sets with up to `size` elements from `element`
    /// (duplicates collapse, so the realized size may be smaller).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// `Some(value)` with the given probability, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        Weighted { probability, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_f64() < self.probability {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    //! Sampling from fixed pools.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed pool.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} failed: {e}\n  inputs: {:?}",
                        ($(&$arg,)*)
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Choose uniformly among several strategies producing the same type.
/// (Real proptest supports `weight => strategy` arms; this stand-in is
/// uniform only, which is all the workspace uses.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a [`proptest!`] body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..5, 2..6),
            s in crate::collection::btree_set(0u8..50, 0..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn prop_map_applies(d in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0);
            prop_assert!(d < 10);
        }

        #[test]
        fn weighted_option_and_select(
            o in crate::option::weighted(0.5, crate::sample::select(vec!["a", "b"])),
        ) {
            if let Some(v) = o {
                prop_assert!(v == "a" || v == "b");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_honored(_x in 0u8..255) {
            // Runs exactly 3 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_seeding() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
