//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and of
//! ample quality for test-data generation (not cryptographic use).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, producing `T`. Generic over the
/// output type (like real rand's `SampleRange`) so inference can flow
/// backward from the call site into untyped integer literals.
pub trait SampleRange<T> {
    /// Draw one value from `rng` within the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods every [`RngCore`] gets (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=6);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
