//! Offline stand-in for `serde`/`serde_json`.
//!
//! Provides a JSON [`Value`] with order-preserving objects, the [`json!`]
//! macro, [`to_string_pretty`], [`to_value`], and [`from_str`], plus a
//! lightweight [`Serialize`] trait that replaces `#[derive(Serialize)]`
//! with small manual impls (there is no proc-macro derive offline).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization error (the stand-in never actually fails).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// The JSON representation.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Convert any [`Serialize`] value to a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serialize to compact JSON text.
///
/// # Errors
/// Never fails in this stand-in (signature kept serde_json-compatible).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON text (2-space indent, `": "` separators).
///
/// # Errors
/// Never fails in this stand-in (signature kept serde_json-compatible).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

/// Parse JSON text into a [`Value`].
///
/// # Errors
/// Malformed JSON (with a byte offset in the message).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Build a [`Value`] from JSON-like syntax. Keys must be string literals;
/// values may be nested `{...}` / `[...]` literals or any [`Serialize`]
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_array_items!(array $($tt)*);
            $crate::Value::Array(array)
        }
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_object_pairs!(object $($tt)*);
            $crate::Value::Object(object)
        }
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Internal helper for [`json!`] objects — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_pairs {
    ($obj:ident) => {};
    ($obj:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $($crate::json_object_pairs!($obj $($rest)*);)?
    };
    ($obj:ident $key:literal : { $($val:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($val)* })));
        $($crate::json_object_pairs!($obj $($rest)*);)?
    };
    ($obj:ident $key:literal : [ $($val:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($val)* ])));
        $($crate::json_object_pairs!($obj $($rest)*);)?
    };
    ($obj:ident $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!($val)));
        $($crate::json_object_pairs!($obj $($rest)*);)?
    };
}

/// Internal helper for [`json!`] arrays — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($arr:ident) => {};
    ($arr:ident null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $($crate::json_array_items!($arr $($rest)*);)?
    };
    ($arr:ident { $($val:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($val)* }));
        $($crate::json_array_items!($arr $($rest)*);)?
    };
    ($arr:ident [ $($val:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($val)* ]));
        $($crate::json_array_items!($arr $($rest)*);)?
    };
    ($arr:ident $val:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!($val));
        $($crate::json_array_items!($arr $($rest)*);)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let name = "series-a".to_string();
        let xs = vec![Value::Number(1.0), Value::Number(2.0)];
        let v = json!({
            "name": name,
            "count": 2,
            "nested": {"flag": true, "items": xs},
            "list": [1, "two", {"three": 3}],
        });
        assert_eq!(v["name"], "series-a");
        assert_eq!(v["count"], 2.0);
        assert_eq!(v["nested"]["flag"], true);
        assert_eq!(v["nested"]["items"].as_array().unwrap().len(), 2);
        assert_eq!(v["list"][2]["three"], 3.0);
    }

    #[test]
    fn pretty_roundtrip() {
        let v = json!({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": 2.5}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"a\": 1"));
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn compact_numbers_render_like_serde_json() {
        assert_eq!(
            to_string(&json!({"i": 3.0, "f": 2.5})).unwrap(),
            "{\"i\":3,\"f\":2.5}"
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = json!({"a": 1});
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"]["deeper"], Value::Null);
    }
}
